package server

import (
	"fmt"
	"net/http"

	"seqpoint/internal/serving"
)

// Defaults for FleetRequest fields left zero, applied by normalize.
const (
	// DefaultFleetReplicas serves on two replicas: the smallest fleet
	// where routing exists at all.
	DefaultFleetReplicas = 2
	// DefaultFleetRouting is round-robin: the oblivious baseline the
	// queue-aware policies are measured against.
	DefaultFleetRouting = serving.RoutingRoundRobin
	// maxFleetReplicas bounds one request's fleet size: simulation work
	// scales with replicas × requests, and both are already capped.
	maxFleetReplicas = 64
)

// Autoscale defaults, applied when an autoscale block is present but
// leaves thresholds zero.
const (
	// DefaultAutoscaleDownFraction sets the scale-down threshold as a
	// fraction of the scale-up threshold.
	DefaultAutoscaleDownFraction = 0.25
	// DefaultAutoscaleCooldownUS matches the default batching window's
	// order of magnitude.
	DefaultAutoscaleCooldownUS = 50_000
)

// AutoscaleSpec configures the fleet's reactive autoscaler over the
// wire. Min and Max bound the live replica count; thresholds are mean
// queued requests per live replica.
type AutoscaleSpec struct {
	// Min and Max bound the live replica count; Min defaults to 1, Max
	// to the request's replica count.
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
	// UpDepth is the scale-up threshold; zero defaults to one full
	// batch per replica.
	UpDepth float64 `json:"up_depth,omitempty"`
	// DownDepth is the scale-down threshold. A pointer, not a float,
	// so an explicit 0 (never scale down) survives normalization; nil
	// defaults to a quarter of UpDepth.
	DownDepth *float64 `json:"down_depth,omitempty"`
	// CooldownUS is the minimum simulated time between scale actions.
	// A pointer so an explicit 0 (act on every evaluation) survives
	// normalization; nil defaults to 50ms.
	CooldownUS *float64 `json:"cooldown_us,omitempty"`
}

// DisaggSpec splits the fleet into prefill and decode pools over the
// wire; requires the KV model (kv_capacity_gb).
type DisaggSpec struct {
	// Prefill and Decode size the two pools; their sum must equal the
	// request's replica count.
	Prefill int `json:"prefill"`
	Decode  int `json:"decode"`
}

// FleetRequest describes one multi-replica serving simulation over the
// wire: the shared workload envelope (model, rate, batching policy,
// trace shape) plus the fleet dimensions — replica count, routing
// policy, admission bound, and optional autoscaling.
type FleetRequest struct {
	WorkloadSpec
	// Replicas is the fleet size (the initial live count when
	// autoscaling).
	Replicas int `json:"replicas,omitempty"`
	// Routing selects the router: "rr", "least", "jsq", "po2" or "kv"
	// (least cache pressure; needs kv_capacity_gb).
	Routing string `json:"routing,omitempty"`
	// QueueCap bounds each replica's admission queue; 0 is unbounded.
	QueueCap int `json:"queue_cap,omitempty"`
	// Autoscale enables the reactive autoscaler.
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
	// Parallelism > 1 advances independent replicas concurrently
	// between routing barriers; the response is byte-identical to the
	// serial default (0 or 1). Purely a speed knob for large fleets.
	Parallelism int `json:"parallelism,omitempty"`
	// Disagg splits the fleet into prefill and decode pools joined by a
	// handoff queue. Requires the KV model; incompatible with
	// autoscaling.
	Disagg *DisaggSpec `json:"disagg,omitempty"`
}

// disaggConfig maps the wire spec to the simulator's configuration.
func (r FleetRequest) disaggConfig() *serving.DisaggConfig {
	if r.Disagg == nil {
		return nil
	}
	return &serving.DisaggConfig{
		PrefillReplicas: r.Disagg.Prefill,
		DecodeReplicas:  r.Disagg.Decode,
	}
}

// normalize fills defaults in place; the normalized form doubles as
// the coalescing identity.
func (r FleetRequest) normalize() FleetRequest {
	r.WorkloadSpec = r.WorkloadSpec.normalize()
	if r.Replicas == 0 {
		r.Replicas = DefaultFleetReplicas
	}
	if r.Routing == "" {
		r.Routing = DefaultFleetRouting
	}
	if r.Autoscale != nil {
		a := *r.Autoscale
		if a.Min == 0 {
			a.Min = 1
		}
		if a.Max == 0 {
			a.Max = r.Replicas
		}
		if a.UpDepth == 0 {
			a.UpDepth = float64(r.Batch)
		}
		if a.DownDepth == nil {
			v := a.UpDepth * DefaultAutoscaleDownFraction
			a.DownDepth = &v
		}
		if a.CooldownUS == nil {
			v := float64(DefaultAutoscaleCooldownUS)
			a.CooldownUS = &v
		}
		r.Autoscale = &a
	}
	return r
}

// autoscaleConfig maps the wire spec to the simulator's configuration.
func (r FleetRequest) autoscaleConfig() *serving.AutoscaleConfig {
	if r.Autoscale == nil {
		return nil
	}
	return &serving.AutoscaleConfig{
		Min:        r.Autoscale.Min,
		Max:        r.Autoscale.Max,
		UpDepth:    r.Autoscale.UpDepth,
		DownDepth:  *r.Autoscale.DownDepth,
		CooldownUS: *r.Autoscale.CooldownUS,
	}
}

// validateFleet applies the server's request-shape limits on top of
// the shared workload-envelope checks.
func (s *Server) validateFleet(r FleetRequest) error {
	if err := s.validateWorkload(r.WorkloadSpec); err != nil {
		return err
	}
	switch {
	case r.Replicas < 1:
		return fmt.Errorf("replicas must be positive, got %d", r.Replicas)
	case r.Replicas > maxFleetReplicas:
		return fmt.Errorf("replicas %d exceeds the %d-replica limit", r.Replicas, maxFleetReplicas)
	case r.QueueCap < 0:
		return fmt.Errorf("queue_cap must be non-negative, got %d", r.QueueCap)
	case r.Parallelism < 0:
		return fmt.Errorf("parallelism must be non-negative, got %d", r.Parallelism)
	}
	if r.Disagg != nil {
		switch {
		case r.KVCapacityGB == nil:
			return withCode(CodeKVCapacity, fmt.Errorf("disagg needs the KV model: set kv_capacity_gb"))
		case r.Autoscale != nil:
			return fmt.Errorf("disagg and autoscale are incompatible: pool sizes are fixed")
		case r.Disagg.Prefill+r.Disagg.Decode != r.Replicas:
			return fmt.Errorf("disagg pools must sum to replicas: %d + %d != %d",
				r.Disagg.Prefill, r.Disagg.Decode, r.Replicas)
		}
		if err := r.disaggConfig().Validate(); err != nil {
			return err
		}
	}
	if r.Routing == serving.RoutingKV && r.KVCapacityGB == nil {
		return withCode(CodeKVCapacity, fmt.Errorf("kv routing needs the KV model: set kv_capacity_gb"))
	}
	if a := r.autoscaleConfig(); a != nil {
		if a.Max > maxFleetReplicas {
			return fmt.Errorf("autoscale max %d exceeds the %d-replica limit", a.Max, maxFleetReplicas)
		}
		if err := a.Validate(); err != nil {
			return err
		}
		if r.Replicas < a.Min || r.Replicas > a.Max {
			return fmt.Errorf("replicas %d outside autoscale bounds [%d, %d]", r.Replicas, a.Min, a.Max)
		}
	}
	return nil
}

// FleetResponse is the fleet-simulation outcome over the wire.
type FleetResponse struct {
	// Model and Config echo the resolved request.
	Model  string `json:"model"`
	Config string `json:"config"`
	// Trace names the simulated arrival trace; Routing the resolved
	// routing policy.
	Trace   string `json:"trace"`
	Routing string `json:"routing"`
	// RatePerSec is the offered Poisson rate.
	RatePerSec float64 `json:"rate_rps"`
	// Summary is the fleet roll-up: throughput, drop rate, the latency
	// tail, per-replica shares, and autoscaler activity.
	Summary serving.FleetSummary `json:"summary"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	var req FleetRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	req = req.normalize()
	if err := s.validateFleet(req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	workload, hw, policy, trace, err := buildWorkloadSetup(req.WorkloadSpec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	router, err := serving.ParseRouting(req.Routing, req.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	status, body := s.execute(r.Context(), coalesceKey("fleet", req), func() (int, []byte) {
		res, err := serving.SimulateFleet(serving.FleetSpec{
			Model:       workload.Model,
			Trace:       trace,
			Policy:      policy,
			Router:      router,
			Replicas:    req.Replicas,
			QueueCap:    req.QueueCap,
			Autoscale:   req.autoscaleConfig(),
			Parallelism: req.Parallelism,
			Profiles:    s.eng,
			KV:          req.kvConfig(),
			Disagg:      req.disaggConfig(),
		}, hw)
		if err != nil {
			return http.StatusInternalServerError, errorBody(http.StatusInternalServerError, err)
		}
		return http.StatusOK, marshalBody(FleetResponse{
			Model:      req.Model,
			Config:     req.Config,
			Trace:      trace.Name,
			Routing:    router.Name(),
			RatePerSec: req.Rate,
			Summary:    res.Summary(),
		})
	})
	writeRaw(w, status, body)
}
