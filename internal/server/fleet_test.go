package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"seqpoint/internal/serving"
)

func TestFleetHandlerTable(t *testing.T) {
	s := testServer(Options{})
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantInBody string
	}{
		{
			name:       "fleet ok with defaults",
			body:       `{"model":"gnmt","rate":400,"batch":4,"requests":48,"seqlens":[4,7,9,12,15,21]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"routing": "rr"`,
		},
		{
			name:       "jsq routing ok",
			body:       `{"model":"gnmt","rate":400,"batch":4,"requests":48,"replicas":3,"routing":"jsq","seqlens":[4,7,9,12]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"replicas": 3`,
		},
		{
			name:       "po2 routing echoes its seed",
			body:       `{"model":"gnmt","rate":400,"batch":4,"requests":32,"routing":"po2","seed":9,"seqlens":[4,7,9]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"routing": "po2(seed=9)"`,
		},
		{
			name:       "bounded queue reports drops",
			body:       `{"model":"gnmt","rate":100000,"batch":2,"requests":64,"replicas":2,"queue_cap":1,"seqlens":[40,70,90]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"drop_rate_pct"`,
		},
		{
			name:       "autoscale ok",
			body:       `{"model":"gnmt","rate":2000,"batch":4,"requests":64,"replicas":1,"autoscale":{"max":4},"seqlens":[4,7,9,12]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"peak_replicas"`,
		},
		{
			// Regression: an explicit down_depth of 0 means "never
			// scale down" (the simulator allows it) and must not be
			// swallowed by the default; same for cooldown_us 0.
			name:       "explicit zero autoscale fields honored",
			body:       `{"model":"gnmt","rate":3000,"batch":4,"requests":64,"replicas":1,"autoscale":{"max":3,"up_depth":2,"down_depth":0,"cooldown_us":0},"seqlens":[4,7,9,12]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"scale_downs": 0`,
		},
		{
			name:       "unknown routing",
			body:       `{"model":"gnmt","rate":100,"routing":"random"}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown routing",
		},
		{
			name:       "negative replicas",
			body:       `{"model":"gnmt","rate":100,"replicas":-2}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "replicas must be positive",
		},
		{
			name:       "replica limit",
			body:       `{"model":"gnmt","rate":100,"replicas":1000}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "replica limit",
		},
		{
			name:       "negative queue cap",
			body:       `{"model":"gnmt","rate":100,"queue_cap":-1}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "queue_cap",
		},
		{
			name:       "autoscale bounds exclude replicas",
			body:       `{"model":"gnmt","rate":100,"replicas":8,"autoscale":{"min":1,"max":4}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "outside autoscale bounds",
		},
		{
			name:       "autoscale depth order",
			body:       `{"model":"gnmt","rate":100,"replicas":2,"autoscale":{"max":4,"up_depth":1,"down_depth":3}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "down-depth",
		},
		{
			name:       "autoscale max over limit",
			body:       `{"model":"gnmt","rate":100,"autoscale":{"max":500}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "replica limit",
		},
		{
			name:       "serve-level validation still applies",
			body:       `{"model":"gnmt","rate":-1,"replicas":2}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "rate must be in",
		},
		{
			name:       "unknown model",
			body:       `{"model":"bert","rate":100,"replicas":2}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown model",
		},
		{
			name:       "unknown field rejected",
			body:       `{"model":"gnmt","rate":100,"router":"jsq"}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown field",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, s, "/v1/fleet", tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", w.Code, tc.wantStatus, w.Body.String())
			}
			if !strings.Contains(w.Body.String(), tc.wantInBody) {
				t.Errorf("body %s missing %q", w.Body.String(), tc.wantInBody)
			}
		})
	}
}

func TestFleetGetMethodNotAllowed(t *testing.T) {
	s := testServer(Options{})
	req := httptest.NewRequest(http.MethodGet, "/v1/fleet", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/fleet = %d, want 405", w.Code)
	}
}

// TestFleetDeterministicAcrossRequests: the same fleet request —
// including po2's seeded routing — must produce byte-identical bodies
// on repeat.
func TestFleetDeterministicAcrossRequests(t *testing.T) {
	s := testServer(Options{})
	body := `{"model":"gnmt","rate":600,"batch":4,"requests":48,"replicas":3,"routing":"po2","queue_cap":8,"seqlens":[4,7,9,12,15,21]}`
	first := postJSON(t, s, "/v1/fleet", body)
	if first.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", first.Code, first.Body.String())
	}
	second := postJSON(t, s, "/v1/fleet", body)
	if first.Body.String() != second.Body.String() {
		t.Errorf("repeat fleet request differs:\n%s\nvs\n%s", first.Body.String(), second.Body.String())
	}
}

// TestFleetClientRoundTrip drives /v1/fleet through the typed client
// and checks the roll-up's fleet-level invariants.
func TestFleetClientRoundTrip(t *testing.T) {
	ts := httptest.NewServer(testServer(Options{}))
	defer ts.Close()
	c := NewClient(ts.URL, nil)

	resp, err := c.Fleet(context.Background(), FleetRequest{
		WorkloadSpec: WorkloadSpec{
			Model:    "gnmt",
			Rate:     500,
			Batch:    4,
			Requests: 64,
			SeqLens:  []int{4, 7, 9, 12, 15},
		},
		Replicas: 3,
		Routing:  serving.RoutingJSQ,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Routing != serving.RoutingJSQ {
		t.Errorf("routing = %q, want jsq", resp.Routing)
	}
	sum := resp.Summary
	if sum.Replicas != 3 || len(sum.PerReplica) != 3 {
		t.Errorf("replicas = %d with %d per-replica rows, want 3/3", sum.Replicas, len(sum.PerReplica))
	}
	if sum.Served+sum.Rejected != 64 {
		t.Errorf("served %d + rejected %d != 64 requests", sum.Served, sum.Rejected)
	}
	var perReplica int
	for _, rs := range sum.PerReplica {
		perReplica += rs.Served
	}
	if perReplica != sum.Served {
		t.Errorf("per-replica served sums to %d, fleet served %d", perReplica, sum.Served)
	}
	if sum.ThroughputRPS <= 0 || sum.P99LatencyUS <= 0 {
		t.Errorf("degenerate roll-up: throughput %v, p99 %v", sum.ThroughputRPS, sum.P99LatencyUS)
	}

	// An invalid fleet field surfaces the server's message through the
	// typed error.
	_, err = c.Fleet(context.Background(), FleetRequest{
		WorkloadSpec: WorkloadSpec{Model: "gnmt", Rate: 100},
		Routing:      "random",
	})
	if err == nil || !strings.Contains(err.Error(), "unknown routing") {
		t.Errorf("error = %v, want the server's unknown-routing message", err)
	}
}
