package server

import (
	"fmt"

	"seqpoint/internal/dataset"
	"seqpoint/internal/engine"
	"seqpoint/internal/experiments"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/trainer"
)

// Default request parameters, applied by normalize.
const (
	// DefaultEpochs keeps what-if queries cheap: all per-epoch
	// quantities are epoch-invariant under the bundled schedules, so one
	// epoch answers most projection questions.
	DefaultEpochs = 1
	// DefaultConfig is the paper's calibration configuration.
	DefaultConfig = "#1"
)

// SimulateRequest describes one training-run simulation over the wire.
// Only Model is required; everything else defaults to the paper's
// canonical setup (batch 64, one epoch, seed 1, config #1, single GPU).
type SimulateRequest struct {
	// Model selects the workload: "ds2", "gnmt", "transformer" or
	// "seq2seq". The workload fixes the corpus and batching schedule.
	Model string `json:"model"`
	// Batch is the global minibatch size.
	Batch int `json:"batch,omitempty"`
	// Epochs is the number of training epochs to simulate.
	Epochs int `json:"epochs,omitempty"`
	// Seed drives corpus synthesis and shuffling.
	Seed int64 `json:"seed,omitempty"`
	// Config names the hardware configuration, one of Table II's
	// "#1".."#5".
	Config string `json:"config,omitempty"`
	// GPUs sizes the data-parallel cluster; <= 1 simulates a single GPU.
	GPUs int `json:"gpus,omitempty"`
	// Topology is "ring" or "mesh"; defaults to ring on multi-GPU runs.
	Topology string `json:"topology,omitempty"`
	// LinkGBps overrides the per-link interconnect bandwidth.
	LinkGBps float64 `json:"link_gbps,omitempty"`
	// LinkLatencyUS overrides the per-hop message latency.
	LinkLatencyUS float64 `json:"link_latency_us,omitempty"`
	// Overlap overrides the compute/communication overlap fraction
	// ([0,1]); nil keeps the cluster default.
	Overlap *float64 `json:"overlap,omitempty"`
	// SeqLens, when set, replaces the workload's corpus with a synthetic
	// corpus of exactly these sequence lengths — hermetic and fast.
	SeqLens []int `json:"seqlens,omitempty"`
	// Subsample, when positive, cuts the training corpus to this many
	// samples before planning (ignored when SeqLens is set).
	Subsample int `json:"subsample,omitempty"`
	// Eval includes the per-epoch evaluation pass.
	Eval bool `json:"eval,omitempty"`
}

// normalize fills defaults in place. The normalized form doubles as the
// coalescing identity: two requests that normalize to the same value
// are the same query.
func (r SimulateRequest) normalize() SimulateRequest {
	if r.Batch == 0 {
		r.Batch = experiments.DefaultBatch
	}
	if r.Epochs == 0 {
		r.Epochs = DefaultEpochs
	}
	if r.Seed == 0 {
		r.Seed = experiments.DefaultSeed
	}
	if r.Config == "" {
		r.Config = DefaultConfig
	}
	if r.GPUs <= 1 {
		r.GPUs = 1
	}
	return r
}

// workloadByName resolves a wire model name to its workload. The wire
// model set (no CNN, on any endpoint) is experiments'
// ServedWorkloadByName; every failure maps to the wire-facing model
// list (the registry's own error mentions cnn, which this API never
// accepts — /v1/serve adds its own explanation for cnn specifically).
func workloadByName(model string, seed int64) (experiments.Workload, error) {
	w, err := experiments.ServedWorkloadByName(model, seed)
	if err != nil {
		return experiments.Workload{}, fmt.Errorf("unknown model %q (want ds2, gnmt, transformer or seq2seq)", model)
	}
	return w, nil
}

// buildSpec resolves a normalized request into a runnable trainer.Spec
// and hardware configuration. All resolution failures are client errors.
func buildSpec(r SimulateRequest) (trainer.Spec, gpusim.Config, error) {
	var zero trainer.Spec
	w, err := workloadByName(r.Model, r.Seed)
	if err != nil {
		return zero, gpusim.Config{}, err
	}

	hw, err := configByName(r.Config)
	if err != nil {
		return zero, gpusim.Config{}, err
	}

	cl, err := buildCluster(r)
	if err != nil {
		return zero, gpusim.Config{}, err
	}

	train, eval := w.Train, w.Eval
	if len(r.SeqLens) > 0 {
		if len(r.SeqLens) < r.Batch {
			return zero, gpusim.Config{}, fmt.Errorf("seqlens provides %d samples, fewer than one batch (%d)",
				len(r.SeqLens), r.Batch)
		}
		syn, err := dataset.Synthetic(fmt.Sprintf("custom-%s", r.Model), r.SeqLens, 1000)
		if err != nil {
			return zero, gpusim.Config{}, fmt.Errorf("invalid seqlens: %w", err)
		}
		train, eval = syn, syn
	} else if r.Subsample > 0 {
		train = dataset.Subsample(train, r.Subsample, r.Seed)
	}
	if !r.Eval {
		eval = nil
	}

	return trainer.Spec{
		Model:    w.Model,
		Train:    train,
		Eval:     eval,
		Batch:    r.Batch,
		Epochs:   r.Epochs,
		Schedule: w.Schedule,
		Seed:     r.Seed,
		Cluster:  cl,
	}, hw, nil
}

// configByName resolves a Table II configuration name.
func configByName(name string) (gpusim.Config, error) {
	for _, c := range gpusim.TableII() {
		if c.Name == name {
			return c, nil
		}
	}
	return gpusim.Config{}, fmt.Errorf("unknown config %q (want one of Table II: #1..#5)", name)
}

// buildCluster assembles the cluster configuration from request fields,
// starting from the ring default and applying explicit overrides.
func buildCluster(r SimulateRequest) (gpusim.ClusterConfig, error) {
	cl := gpusim.DefaultCluster(r.GPUs)
	if r.Topology != "" {
		topo, err := gpusim.ParseTopology(r.Topology)
		if err != nil {
			return cl, err
		}
		if cl.GPUs > 1 {
			cl.Topology = topo
		}
	}
	if r.LinkGBps != 0 {
		cl.LinkGBps = r.LinkGBps
	}
	if r.LinkLatencyUS != 0 {
		cl.LinkLatencyUS = r.LinkLatencyUS
	}
	if r.Overlap != nil {
		cl.Overlap = *r.Overlap
	}
	if err := cl.Validate(); err != nil {
		return cl, err
	}
	return cl, nil
}

// taskName labels one sweep cell in results.
func taskName(r SimulateRequest) string {
	return fmt.Sprintf("%s on %s gpus=%d batch=%d epochs=%d", r.Model, r.Config, r.GPUs, r.Batch, r.Epochs)
}

// SweepRequest is a (workload × config) grid: every task simulates
// independently, sharing the server engine's profile cache.
type SweepRequest struct {
	// Tasks are the grid cells.
	Tasks []SimulateRequest `json:"tasks"`
	// Parallelism bounds concurrent simulations; <= 0 uses the engine
	// default.
	Parallelism int `json:"parallelism,omitempty"`
}

// SweepTaskResult is one sweep cell's outcome.
type SweepTaskResult struct {
	// Name labels the cell ("gnmt on #3 gpus=4 batch=64 epochs=1").
	Name string `json:"name"`
	// Error is the cell's failure; empty on success.
	Error string `json:"error,omitempty"`
	// Summary is the run digest; nil when Error is set.
	Summary *trainer.RunSummary `json:"summary,omitempty"`
}

// SweepResponse carries the sweep results in task order.
type SweepResponse struct {
	Results []SweepTaskResult `json:"results"`
}

// SeqPointRequest asks for representative-iteration selection: simulate
// one run, log epoch 0, and select SeqPoints (or a baseline's pick).
type SeqPointRequest struct {
	SimulateRequest
	// ErrorThresholdPct is the paper's e (percent); 0 uses the default.
	ErrorThresholdPct float64 `json:"e,omitempty"`
	// MaxUniqueNoBinning is the paper's n; 0 uses the default.
	MaxUniqueNoBinning int `json:"n,omitempty"`
	// InitialBins is the starting k; 0 uses the default.
	InitialBins int `json:"k,omitempty"`
	// Method selects the strategy: "seqpoint" (default), "frequent",
	// "median" or "worst".
	Method string `json:"method,omitempty"`
}

// SeqPointResult is one selected representative over the wire.
type SeqPointResult struct {
	// SeqLen is the representative sequence length to profile.
	SeqLen int `json:"seqlen"`
	// Weight is the number of epoch iterations it stands for.
	Weight float64 `json:"weight"`
	// IterTimeUS is its single-iteration runtime on the requested
	// configuration.
	IterTimeUS float64 `json:"iter_time_us"`
}

// SeqPointResponse is the selection outcome.
type SeqPointResponse struct {
	// Model and Config echo the resolved request.
	Model  string `json:"model"`
	Config string `json:"config"`
	// Method is the strategy that produced the points.
	Method string `json:"method"`
	// UniqueSLs is the number of unique sequence lengths in the logged
	// epoch.
	UniqueSLs int `json:"unique_sls"`
	// Bins is the final bin count k (0 when binning was skipped).
	Bins int `json:"bins"`
	// Binned reports whether binning was needed.
	Binned bool `json:"binned"`
	// ErrorPct is the self-projection error of the selection.
	ErrorPct float64 `json:"error_pct"`
	// Points are the selected representatives, ordered by SL.
	Points []SeqPointResult `json:"points"`
}

// StatsResponse is the service- and engine-level counter snapshot.
type StatsResponse struct {
	// Engine is the profile-cache counter snapshot: hits are requests
	// served from a completed entry, misses are profiles actually
	// computed, dedups are requests that waited on an in-flight
	// computation.
	Engine engine.Stats `json:"engine"`
	// Requests counts simulation requests accepted for processing.
	Requests int64 `json:"requests"`
	// Completed counts accepted simulations that finished computing
	// (successfully, with an error, or by contained panic). At
	// quiescence Requests == Completed and Inflight == 0.
	Completed int64 `json:"completed"`
	// Coalesced counts requests that shared another identical in-flight
	// request's response instead of computing.
	Coalesced int64 `json:"coalesced"`
	// Rejected counts requests turned away without computing: by the
	// in-flight limiter (429) or by drain mode (503).
	Rejected int64 `json:"rejected"`
	// Inflight is the number of simulations currently executing.
	Inflight int64 `json:"inflight"`
	// MaxInflight is the limiter bound.
	MaxInflight int `json:"max_inflight"`
	// Draining reports whether the server has begun graceful shutdown.
	Draining bool `json:"draining"`
}

// Machine-readable error codes carried by every non-2xx response's
// "code" field (and surfaced on the client as APIError.Code), so
// programs branch on a stable identifier instead of parsing prose.
const (
	// CodeBadRequest marks a malformed or out-of-bounds request (400).
	CodeBadRequest = "bad_request"
	// CodeKVCapacity marks a KV-cache-model misconfiguration: invalid
	// kv_capacity_gb, or a KV-dependent knob without the model (400).
	CodeKVCapacity = "kv_capacity"
	// CodeBadTrace marks a malformed arrival trace: a trace_file that is
	// corrupt, truncated, wrong-version, or whose arrivals are negative
	// or non-monotone (400).
	CodeBadTrace = "bad_trace"
	// CodeMethodNotAllowed marks a wrong HTTP method (405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeTooLarge marks a request body over the server's byte limit
	// (413).
	CodeTooLarge = "too_large"
	// CodeInfeasible marks a well-formed plan request whose SLO no
	// candidate within bounds can meet (422).
	CodeInfeasible = "infeasible"
	// CodeOverloaded marks rejection by the in-flight limiter (429).
	CodeOverloaded = "overloaded"
	// CodeInternal marks a simulation or encoding failure (500).
	CodeInternal = "internal"
	// CodeCancelled marks a request abandoned because the client went
	// away (503).
	CodeCancelled = "cancelled"
	// CodeDraining marks a simulation rejected because the server is
	// draining for shutdown (503).
	CodeDraining = "draining"
	// CodeTimeout marks a request that outlived the server's
	// per-request deadline (504).
	CodeTimeout = "timeout"
)

// errorResponse is the uniform error body:
// {"error": "...", "code": "..."}.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
