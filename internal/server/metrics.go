package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"seqpoint/internal/stats"
)

// latencyEdges are the request-duration bucket upper bounds in
// seconds. The range is wide on purpose: a cache-hit stats probe
// lands in the sub-millisecond buckets while a cold multi-GPU sweep
// can legitimately take minutes.
var latencyEdges = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// endpointMetrics accumulates one route's request counts (by status
// code) and latency histogram.
type endpointMetrics struct {
	mu       sync.Mutex
	byStatus map[int]int64
	latency  *stats.TimingHistogram
}

func (m *endpointMetrics) observe(status int, seconds float64) {
	m.latency.Observe(seconds)
	m.mu.Lock()
	m.byStatus[status]++
	m.mu.Unlock()
}

// metricsState is the server's observability surface: per-endpoint
// counters and histograms filled by the ServeHTTP middleware, plus the
// last cache-snapshot observation reported by the daemon.
type metricsState struct {
	paths     []string // sorted route paths
	endpoints map[string]*endpointMetrics

	snapMu      sync.Mutex
	snapTime    time.Time
	snapEntries int64
}

func newMetricsState(paths []string) *metricsState {
	ms := &metricsState{
		paths:     append([]string(nil), paths...),
		endpoints: make(map[string]*endpointMetrics, len(paths)),
	}
	sort.Strings(ms.paths)
	for _, p := range ms.paths {
		h, err := stats.NewTimingHistogram(latencyEdges)
		if err != nil {
			// latencyEdges is a package constant; a bad edge list is a
			// programming error caught by any test that builds a Server.
			panic(err)
		}
		ms.endpoints[p] = &endpointMetrics{byStatus: make(map[int]int64), latency: h}
	}
	return ms
}

// endpoint returns the metrics slot for a route path, nil for
// unregistered paths (those fall through unrecorded).
func (ms *metricsState) endpoint(path string) *endpointMetrics { return ms.endpoints[path] }

// ObserveSnapshot records that a cache snapshot with the given entry
// count was just written; /metrics reports its age and size. The
// daemon calls this after every successful SaveSnapshot.
func (s *Server) ObserveSnapshot(entries int64) {
	ms := s.metrics
	ms.snapMu.Lock()
	ms.snapTime = s.now()
	ms.snapEntries = entries
	ms.snapMu.Unlock()
}

// statusWriter captures the status code a handler writes, defaulting
// to 200 for handlers that never call WriteHeader explicitly.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (version 0.0.4): per-endpoint request counters and latency
// histograms, engine cache counters with the derived hit ratio,
// service gauges, and — when the daemon persists its cache — the age
// and size of the last snapshot. Output ordering is deterministic
// (endpoints and status codes sorted), so scrapes of identical state
// are byte-identical.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet, r.Method)
		return
	}
	var b strings.Builder
	s.renderMetrics(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}

func (s *Server) renderMetrics(b *strings.Builder) {
	ms := s.metrics

	b.WriteString("# HELP seqpoint_requests_total HTTP requests served, by endpoint and status code.\n")
	b.WriteString("# TYPE seqpoint_requests_total counter\n")
	for _, path := range ms.paths {
		em := ms.endpoints[path]
		em.mu.Lock()
		statuses := make([]int, 0, len(em.byStatus))
		for st := range em.byStatus {
			statuses = append(statuses, st)
		}
		sort.Ints(statuses)
		for _, st := range statuses {
			fmt.Fprintf(b, "seqpoint_requests_total{endpoint=%q,status=\"%d\"} %d\n", path, st, em.byStatus[st])
		}
		em.mu.Unlock()
	}

	b.WriteString("# HELP seqpoint_request_duration_seconds HTTP request latency, by endpoint.\n")
	b.WriteString("# TYPE seqpoint_request_duration_seconds histogram\n")
	for _, path := range ms.paths {
		snap := ms.endpoints[path].latency.Snapshot()
		if snap.Count == 0 {
			// An endpoint nobody has hit contributes no series; scrapes
			// stay compact and a first hit simply makes it appear.
			continue
		}
		cum := snap.Cumulative()
		for i, edge := range snap.Edges {
			fmt.Fprintf(b, "seqpoint_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				path, formatFloat(edge), cum[i])
		}
		fmt.Fprintf(b, "seqpoint_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", path, snap.Count)
		fmt.Fprintf(b, "seqpoint_request_duration_seconds_sum{endpoint=%q} %s\n", path, formatFloat(snap.Sum))
		fmt.Fprintf(b, "seqpoint_request_duration_seconds_count{endpoint=%q} %d\n", path, snap.Count)
	}

	eng := s.eng.Stats()
	writeCounter(b, "seqpoint_cache_hits_total", "Profile requests served from a completed cache entry.", eng.Hits)
	writeCounter(b, "seqpoint_cache_misses_total", "Profiles actually computed (one per unique key).", eng.Misses)
	writeCounter(b, "seqpoint_cache_dedups_total", "Profile requests that waited on an in-flight computation.", eng.Dedups)
	writeGauge(b, "seqpoint_cache_entries", "Profiles currently cached.", float64(eng.Entries))
	ratio := 0.0
	if eng.Hits+eng.Misses > 0 {
		ratio = float64(eng.Hits) / float64(eng.Hits+eng.Misses)
	}
	writeGauge(b, "seqpoint_cache_hit_ratio", "Fraction of profile lookups served from cache: hits / (hits + misses).", ratio)

	writeCounter(b, "seqpoint_simulations_total", "Simulation requests accepted for processing.", s.requests.Load())
	writeCounter(b, "seqpoint_simulations_completed_total", "Accepted simulations that finished computing.", s.completed.Load())
	writeCounter(b, "seqpoint_coalesced_total", "Requests that shared an identical in-flight request's response.", s.coalesced.Load())
	writeCounter(b, "seqpoint_rejected_total", "Requests rejected by the in-flight limiter or drain mode.", s.rejected.Load())
	writeGauge(b, "seqpoint_inflight", "Simulations currently executing.", float64(s.inflight.Load()))
	writeGauge(b, "seqpoint_max_inflight", "In-flight limiter bound.", float64(s.opts.MaxInflight))
	draining := 0.0
	if s.draining.Load() {
		draining = 1
	}
	writeGauge(b, "seqpoint_draining", "1 while the server drains for shutdown, else 0.", draining)

	ms.snapMu.Lock()
	snapTime, snapEntries := ms.snapTime, ms.snapEntries
	ms.snapMu.Unlock()
	if !snapTime.IsZero() {
		writeGauge(b, "seqpoint_snapshot_age_seconds", "Seconds since the last cache snapshot was written.",
			s.now().Sub(snapTime).Seconds())
		writeGauge(b, "seqpoint_snapshot_entries", "Profiles written by the last cache snapshot.", float64(snapEntries))
	}
}

func writeCounter(b *strings.Builder, name, help string, v int64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(b *strings.Builder, name, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
}

// formatFloat renders a float the shortest way that round-trips,
// matching the exposition format's expectations ("0.005", not
// "5e-03").
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
