package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"seqpoint/internal/workload"
)

// Wire-level coverage of the multi-tenant workload envelope: the
// tenants/pattern generator knobs, trace_file replay, the bad_trace
// error code, and the planner's per-tenant SLO dimension.

// tenantBody is a small tenanted diurnal workload shared by the tests
// below; seqlens keeps corpus synthesis hermetic like testSeqLens.
const tenantBody = `{"model":"gnmt","rate":300,"batch":4,"policy":"wfq","requests":48,
	"pattern":"diurnal",
	"tenants":[{"class":"chat","count":2,"weight":4,"zipf_s":1.1,"seqlens":[4,7,9]},
	           {"class":"bulk","count":1,"burst":8,"seqlens":[15,21]}]}`

func TestTenantedWorkloadEnvelope(t *testing.T) {
	s := testServer(Options{})
	cases := []struct {
		name       string
		path       string
		body       string
		wantStatus int
		wantInBody string
	}{
		{
			name:       "tenanted serve rolls up per tenant",
			path:       "/v1/serve",
			body:       tenantBody,
			wantStatus: http.StatusOK,
			wantInBody: `"tenant": "chat-0"`,
		},
		{
			name:       "tenanted fleet rolls up per tenant",
			path:       "/v1/fleet",
			body:       `{"replicas":2,` + tenantBody[1:],
			wantStatus: http.StatusOK,
			wantInBody: `"tenant": "bulk-0"`,
		},
		{
			name:       "pattern without tenants stays untenanted",
			path:       "/v1/serve",
			body:       `{"model":"gnmt","rate":300,"batch":4,"requests":32,"pattern":"diurnal","seqlens":[4,7,9]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"p99_latency_us"`,
		},
		{
			name:       "unknown pattern rejected",
			path:       "/v1/serve",
			body:       `{"model":"gnmt","rate":300,"requests":32,"pattern":"lunar","seqlens":[4,7,9]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown pattern",
		},
		{
			name:       "cohort without tenants rejected",
			path:       "/v1/serve",
			body:       `{"model":"gnmt","rate":300,"requests":32,"tenants":[{"class":"chat","count":0}]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "count must be in [1, 128]",
		},
		{
			name:       "trace_file with tenants rejected",
			path:       "/v1/serve",
			body:       `{"model":"gnmt","rate":300,"trace_file":"x.trace","tenants":[{"class":"chat","count":2}]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "trace_file and tenants are incompatible",
		},
		{
			name:       "trace_file with seqlens rejected",
			path:       "/v1/serve",
			body:       `{"model":"gnmt","rate":300,"trace_file":"x.trace","seqlens":[4,7]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "trace_file and seqlens are incompatible",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, s, tc.path, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.wantStatus, w.Body.String())
			}
			if !bytes.Contains(w.Body.Bytes(), []byte(tc.wantInBody)) {
				t.Fatalf("body lacks %q:\n%s", tc.wantInBody, w.Body.String())
			}
		})
	}

	// A second identical POST must be byte-identical — the generator is
	// part of the deterministic surface.
	first := postJSON(t, s, "/v1/fleet", `{"replicas":2,`+tenantBody[1:])
	second := postJSON(t, s, "/v1/fleet", `{"replicas":2,`+tenantBody[1:])
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("repeated tenanted fleet POSTs returned different bytes")
	}
}

func TestTraceFileReplay(t *testing.T) {
	s := testServer(Options{})
	dir := t.TempDir()

	// Record a small tenanted trace the way a client would: generate,
	// save, replay through both serving endpoints.
	trace, err := workload.Generate(workload.GenSpec{
		Requests:   40,
		RatePerSec: 250,
		Seed:       7,
		Cohorts: []workload.Cohort{
			{Class: "chat", Tenants: 2, Weight: 3, SeqLens: []int{4, 7, 9}},
			{Class: "bulk", Tenants: 1, Weight: 1, SeqLens: []int{15, 21}, Burst: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "arrivals.trace")
	if err := workload.SaveTrace(path, trace); err != nil {
		t.Fatal(err)
	}

	for _, endpoint := range []string{"/v1/serve", "/v1/fleet"} {
		body := fmt.Sprintf(`{"model":"gnmt","batch":4,"trace_file":%q}`, path)
		w := postJSON(t, s, endpoint, body)
		if w.Code != http.StatusOK {
			t.Fatalf("%s replay: status %d: %s", endpoint, w.Code, w.Body.String())
		}
		var resp struct {
			Summary struct {
				Requests  int `json:"requests"`
				PerTenant []struct {
					Tenant   string `json:"tenant"`
					Requests int    `json:"requests"`
				} `json:"per_tenant"`
			} `json:"summary"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("%s replay: %v", endpoint, err)
		}
		if resp.Summary.Requests != len(trace.Requests) {
			t.Fatalf("%s replay served %d requests, trace holds %d", endpoint, resp.Summary.Requests, len(trace.Requests))
		}
		if len(resp.Summary.PerTenant) != len(trace.Tenants()) {
			t.Fatalf("%s replay has %d per-tenant rows, trace has %d tenants", endpoint, len(resp.Summary.PerTenant), len(trace.Tenants()))
		}
	}

	// An explicit rate rescales the replay; the summary's offered rate
	// follows it.
	w := postJSON(t, s, "/v1/serve", fmt.Sprintf(`{"model":"gnmt","batch":4,"rate":500,"trace_file":%q}`, path))
	if w.Code != http.StatusOK {
		t.Fatalf("rescaled replay: status %d: %s", w.Code, w.Body.String())
	}

	// Corruption surfaces as a 400 with the typed bad_trace code, for
	// every flavor: garbage, wrong version, and a missing file.
	badCases := []struct {
		name    string
		content string
	}{
		{"garbage", "not json\n"},
		{"wrong version", `{"magic":"seqpoint-workload-trace","version":99,"requests":0}` + "\n"},
	}
	for _, bc := range badCases {
		t.Run(bc.name, func(t *testing.T) {
			bad := filepath.Join(dir, "bad.trace")
			if err := os.WriteFile(bad, []byte(bc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			w := postJSON(t, s, "/v1/serve", fmt.Sprintf(`{"model":"gnmt","trace_file":%q}`, bad))
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
			}
			if !bytes.Contains(w.Body.Bytes(), []byte(`"code":"bad_trace"`)) &&
				!bytes.Contains(w.Body.Bytes(), []byte(`"code": "bad_trace"`)) {
				t.Fatalf("body lacks bad_trace code:\n%s", w.Body.String())
			}
		})
	}
}

func TestPlanTenantSLO(t *testing.T) {
	s := testServer(Options{})

	// A per-tenant TTFT target must be judged against the tenanted
	// trace the envelope describes — the probe threads the generated
	// trace through the load-axis search, so the dimension resolves
	// with real data instead of failing vacuously.
	body := `{"model":"gnmt","rate":300,"batch":4,"requests":48,"max_replicas":4,
		"kv_capacity_gb":2,"decode_steps":4,
		"tenants":[{"class":"chat","count":2,"seqlens":[4,7,9]}],
		"slo":{"tenant_ttft_p99_us":{"chat-0":60000000}}}`
	w := postJSON(t, s, "/v1/plan", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Plan struct {
			Replicas int `json:"replicas"`
			SLO      []struct {
				Name     string  `json:"name"`
				Achieved float64 `json:"achieved"`
				OK       bool    `json:"ok"`
			} `json:"slo"`
		} `json:"plan"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range resp.Plan.SLO {
		if d.Name == "ttft_p99_us[chat-0]" {
			found = true
			if !d.OK || d.Achieved <= 0 {
				t.Fatalf("tenant dimension unresolved: %+v", d)
			}
		}
	}
	if !found {
		t.Fatalf("plan carries no per-tenant dimension:\n%s", w.Body.String())
	}

	// Without the KV model the target is meaningless — typed kv_capacity.
	w = postJSON(t, s, "/v1/plan",
		`{"model":"gnmt","rate":300,"requests":48,"max_replicas":4,"seqlens":[4,7,9],
		  "slo":{"tenant_ttft_p99_us":{"chat-0":60000000}}}`)
	if w.Code != http.StatusBadRequest || !bytes.Contains(w.Body.Bytes(), []byte("kv_capacity")) {
		t.Fatalf("tenant TTFT without KV: status %d body %s", w.Code, w.Body.String())
	}

	// trace_file without a rate cannot drive the load-axis search.
	w = postJSON(t, s, "/v1/plan",
		`{"model":"gnmt","trace_file":"x.trace","max_replicas":4,"slo":{"latency_p99_us":1000000}}`)
	if w.Code != http.StatusBadRequest || !bytes.Contains(w.Body.Bytes(), []byte("plan needs rate")) {
		t.Fatalf("plan trace_file without rate: status %d body %s", w.Code, w.Body.String())
	}
}
