package server

import (
	"fmt"
	"math"

	"seqpoint/internal/dataset"
	"seqpoint/internal/experiments"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/serving"
)

// Defaults for WorkloadSpec fields left zero, applied by normalize.
const (
	// DefaultServePolicy is timeout-bounded dynamic batching: the only
	// policy that behaves sanely at every arrival rate.
	DefaultServePolicy = serving.PolicyDynamic
	// DefaultServeTimeoutUS caps queueing delay at low load.
	DefaultServeTimeoutUS = 50_000
	// DefaultServeRequests is the default trace length.
	DefaultServeRequests = experiments.DefaultServeRequests
	// maxServeRate bounds the Poisson arrival rate: beyond this every
	// request of the trace effectively arrives at once, which
	// BurstTrace models directly.
	maxServeRate = 1e9
)

// WorkloadSpec is the request envelope shared by every serving-family
// endpoint (/v1/serve, /v1/fleet, /v1/plan): the served model and
// arrival process, the hardware configuration, the batching policy,
// the trace shape, and the optional KV-cache memory model. It is
// embedded — not nested — by ServeRequest, FleetRequest and
// PlanRequest, so the wire shape stays the flat field set older
// clients already send, while normalization, validation and setup
// resolution live in exactly one place.
type WorkloadSpec struct {
	// Model selects the served network: "ds2", "gnmt", "transformer"
	// or "seq2seq". The workload fixes the request-length corpus.
	Model string `json:"model"`
	// Rate is the Poisson arrival rate in requests per second.
	Rate float64 `json:"rate"`
	// Config names the hardware configuration ("#1".."#5").
	Config string `json:"config,omitempty"`
	// Batch is the batching policy's max batch size.
	Batch int `json:"batch,omitempty"`
	// Policy selects the batching policy: "fixed", "dynamic" or
	// "length".
	Policy string `json:"policy,omitempty"`
	// TimeoutUS is the dynamic policy's batching window in
	// microseconds; nil uses the default. A pointer, not a float, so
	// an explicit 0 (serve-immediately) survives normalization.
	TimeoutUS *float64 `json:"timeout_us,omitempty"`
	// Requests is the trace length.
	Requests int `json:"requests,omitempty"`
	// Seed drives arrival times and request-length sampling.
	Seed int64 `json:"seed,omitempty"`
	// SeqLens, when set, replaces the workload corpus as the pool
	// request lengths are drawn from.
	SeqLens []int `json:"seqlens,omitempty"`
	// KVCapacityGB enables the per-replica KV-cache capacity model
	// (decimal gigabytes). A pointer so absent means disabled; with it
	// set, requests are prefill + decode and TTFT fields appear in the
	// summary.
	KVCapacityGB *float64 `json:"kv_capacity_gb,omitempty"`
	// DecodeSteps is the decode length per request under the KV model.
	DecodeSteps int `json:"decode_steps,omitempty"`
	// KVPreempt selects the over-capacity behavior: "evict" (default)
	// or "block".
	KVPreempt string `json:"kv_preempt,omitempty"`
}

// kvConfig maps the wire knobs to the simulator's KV configuration;
// nil when the capacity model is disabled.
func (r WorkloadSpec) kvConfig() *serving.KVConfig {
	if r.KVCapacityGB == nil {
		return nil
	}
	return &serving.KVConfig{
		CapacityBytes: *r.KVCapacityGB * 1e9,
		DecodeSteps:   r.DecodeSteps,
		Preempt:       r.KVPreempt,
	}
}

// normalize fills defaults in place; the normalized form doubles as
// the coalescing identity.
func (r WorkloadSpec) normalize() WorkloadSpec {
	if r.Config == "" {
		r.Config = DefaultConfig
	}
	if r.Batch == 0 {
		r.Batch = experiments.DefaultBatch
	}
	if r.Policy == "" {
		r.Policy = DefaultServePolicy
	}
	if r.TimeoutUS == nil {
		v := float64(DefaultServeTimeoutUS)
		r.TimeoutUS = &v
	}
	if r.Requests == 0 {
		r.Requests = DefaultServeRequests
	}
	if r.Seed == 0 {
		r.Seed = experiments.DefaultSeed
	}
	return r
}

// validateWorkload applies the server's request-shape limits shared by
// every serving-family endpoint.
func (s *Server) validateWorkload(r WorkloadSpec) error {
	if r.Rate <= 0 || math.IsNaN(r.Rate) || r.Rate > maxServeRate {
		return fmt.Errorf("rate must be in (0, %g] requests/s, got %v", float64(maxServeRate), r.Rate)
	}
	if err := s.batchBounds(r.Batch); err != nil {
		return err
	}
	switch {
	case r.Requests <= 0:
		return fmt.Errorf("requests must be positive, got %d", r.Requests)
	case r.Requests > maxSeqLens:
		return fmt.Errorf("requests %d exceeds the %d-request limit", r.Requests, maxSeqLens)
	case *r.TimeoutUS < 0 || math.IsNaN(*r.TimeoutUS) || math.IsInf(*r.TimeoutUS, 0):
		return fmt.Errorf("timeout_us must be a finite non-negative duration, got %v", *r.TimeoutUS)
	}
	if kv := r.kvConfig(); kv != nil {
		if err := kv.Validate(); err != nil {
			return withCode(CodeKVCapacity, fmt.Errorf("kv_capacity_gb: %w", err))
		}
	} else if r.DecodeSteps != 0 || r.KVPreempt != "" {
		return withCode(CodeKVCapacity, fmt.Errorf("decode_steps and kv_preempt need the KV model: set kv_capacity_gb"))
	}
	return seqLenBounds(r.SeqLens)
}

// buildWorkloadSetup resolves a normalized workload envelope into its
// workload (with the request's synthetic corpus substituted, when
// given), hardware, batching policy and arrival trace. Every failure
// is a client error (HTTP 400).
func buildWorkloadSetup(req WorkloadSpec) (experiments.Workload, gpusim.Config, serving.Policy, serving.Trace, error) {
	var (
		zeroW  experiments.Workload
		zeroHW gpusim.Config
		zeroT  serving.Trace
	)
	workload, err := experiments.ServedWorkloadByName(req.Model, req.Seed)
	if err != nil {
		// Keep the registry's explanatory message for cnn (a model that
		// exists but is not servable); everything else gets the
		// wire-facing model list.
		if req.Model != "cnn" {
			err = fmt.Errorf("unknown model %q (want ds2, gnmt, transformer or seq2seq)", req.Model)
		}
		return zeroW, zeroHW, nil, zeroT, err
	}
	hw, err := configByName(req.Config)
	if err != nil {
		return zeroW, zeroHW, nil, zeroT, err
	}
	policy, err := serving.ParsePolicy(req.Policy, req.Batch, *req.TimeoutUS)
	if err != nil {
		return zeroW, zeroHW, nil, zeroT, err
	}
	if len(req.SeqLens) > 0 {
		corpus, err := dataset.Synthetic(fmt.Sprintf("custom-%s", req.Model), req.SeqLens, workload.Train.Vocab)
		if err != nil {
			return zeroW, zeroHW, nil, zeroT, fmt.Errorf("invalid seqlens: %w", err)
		}
		workload.Train = corpus
	}
	trace, err := serving.PoissonTrace(workload.Train, req.Requests, req.Rate, req.Seed)
	if err != nil {
		return zeroW, zeroHW, nil, zeroT, err
	}
	// A degenerate rate (e.g. denormal-small) can overflow arrival
	// times to +Inf; that is the client's input, so catch it here as a
	// 400 rather than letting the simulation fail with a 500.
	if err := trace.Validate(); err != nil {
		return zeroW, zeroHW, nil, zeroT, err
	}
	return workload, hw, policy, trace, nil
}
