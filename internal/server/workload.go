package server

import (
	"errors"
	"fmt"
	"math"

	"seqpoint/internal/dataset"
	"seqpoint/internal/experiments"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/serving"
	"seqpoint/internal/workload"
)

// Defaults for WorkloadSpec fields left zero, applied by normalize.
const (
	// DefaultServePolicy is timeout-bounded dynamic batching: the only
	// policy that behaves sanely at every arrival rate.
	DefaultServePolicy = serving.PolicyDynamic
	// DefaultServeTimeoutUS caps queueing delay at low load.
	DefaultServeTimeoutUS = 50_000
	// DefaultServeRequests is the default trace length.
	DefaultServeRequests = experiments.DefaultServeRequests
	// maxServeRate bounds the Poisson arrival rate: beyond this every
	// request of the trace effectively arrives at once, which
	// BurstTrace models directly.
	maxServeRate = 1e9
	// DefaultPatternAmplitude is the diurnal swing applied when a
	// diurnal pattern leaves the amplitude unset: the rate oscillates
	// between 0.5× and 1.5× the requested mean.
	DefaultPatternAmplitude = 0.5
	// maxTenantCohorts and maxTenantsPerCohort bound one request's
	// tenant dimension the way replicas and requests already are.
	maxTenantCohorts    = 8
	maxTenantsPerCohort = 128
)

// TenantSpec is one tenant cohort of a generated multi-tenant workload
// over the wire: a class of tenants sharing a traffic shape.
type TenantSpec struct {
	// Class labels the cohort; tenant names are "<class>-<i>".
	Class string `json:"class"`
	// Count is the number of tenants in the cohort.
	Count int `json:"count"`
	// Weight is the cohort's relative share of arrival events; 0
	// defaults to 1.
	Weight float64 `json:"weight,omitempty"`
	// ZipfS skews tenant popularity within the cohort (tenant i drawn
	// with weight 1/(i+1)^s); 0 is uniform.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// SeqLens is the cohort's request-length pool; empty draws from the
	// envelope's corpus (or its seqlens override).
	SeqLens []int `json:"seqlens,omitempty"`
	// DecodeSteps stamps every request of the cohort; needs the KV
	// model.
	DecodeSteps int `json:"decode_steps,omitempty"`
	// Burst is the bulk-submission clump size: each arrival event of
	// the cohort emits this many requests at the same instant.
	Burst int `json:"burst,omitempty"`
}

// WorkloadSpec is the request envelope shared by every serving-family
// endpoint (/v1/serve, /v1/fleet, /v1/plan): the served model and
// arrival process, the hardware configuration, the batching policy,
// the trace shape, and the optional KV-cache memory model. It is
// embedded — not nested — by ServeRequest, FleetRequest and
// PlanRequest, so the wire shape stays the flat field set older
// clients already send, while normalization, validation and setup
// resolution live in exactly one place.
type WorkloadSpec struct {
	// Model selects the served network: "ds2", "gnmt", "transformer"
	// or "seq2seq". The workload fixes the request-length corpus.
	Model string `json:"model"`
	// Rate is the Poisson arrival rate in requests per second.
	Rate float64 `json:"rate"`
	// Config names the hardware configuration ("#1".."#5").
	Config string `json:"config,omitempty"`
	// Batch is the batching policy's max batch size.
	Batch int `json:"batch,omitempty"`
	// Policy selects the batching policy: "fixed", "dynamic" or
	// "length".
	Policy string `json:"policy,omitempty"`
	// TimeoutUS is the dynamic policy's batching window in
	// microseconds; nil uses the default. A pointer, not a float, so
	// an explicit 0 (serve-immediately) survives normalization.
	TimeoutUS *float64 `json:"timeout_us,omitempty"`
	// Requests is the trace length.
	Requests int `json:"requests,omitempty"`
	// Seed drives arrival times and request-length sampling.
	Seed int64 `json:"seed,omitempty"`
	// SeqLens, when set, replaces the workload corpus as the pool
	// request lengths are drawn from.
	SeqLens []int `json:"seqlens,omitempty"`
	// KVCapacityGB enables the per-replica KV-cache capacity model
	// (decimal gigabytes). A pointer so absent means disabled; with it
	// set, requests are prefill + decode and TTFT fields appear in the
	// summary.
	KVCapacityGB *float64 `json:"kv_capacity_gb,omitempty"`
	// DecodeSteps is the decode length per request under the KV model.
	DecodeSteps int `json:"decode_steps,omitempty"`
	// KVPreempt selects the over-capacity behavior: "evict" (default)
	// or "block".
	KVPreempt string `json:"kv_preempt,omitempty"`
	// Tenants enables the multi-tenant workload generator: one cohort
	// per entry, tenant popularity Zipf-skewed within each. Per-tenant
	// latency/TTFT/drop roll-ups appear in the summary.
	Tenants []TenantSpec `json:"tenants,omitempty"`
	// Pattern shapes the arrival rate over time: "uniform" (default)
	// or "diurnal".
	Pattern string `json:"pattern,omitempty"`
	// PatternPeriodUS is one diurnal cycle in microseconds; nil
	// defaults to half the expected trace horizon (two full cycles per
	// trace).
	PatternPeriodUS *float64 `json:"pattern_period_us,omitempty"`
	// PatternAmplitude is the diurnal swing in [0, 1); nil defaults to
	// DefaultPatternAmplitude.
	PatternAmplitude *float64 `json:"pattern_amplitude,omitempty"`
	// TraceFile replays a recorded trace file (see workload.WriteTrace)
	// instead of generating arrivals; incompatible with seqlens,
	// tenants and pattern. With Rate set the trace is rescaled to offer
	// that rate; with Rate 0 it replays as recorded (/v1/plan requires
	// Rate — the planner searches the load axis).
	TraceFile string `json:"trace_file,omitempty"`
}

// kvConfig maps the wire knobs to the simulator's KV configuration;
// nil when the capacity model is disabled.
func (r WorkloadSpec) kvConfig() *serving.KVConfig {
	if r.KVCapacityGB == nil {
		return nil
	}
	return &serving.KVConfig{
		CapacityBytes: *r.KVCapacityGB * 1e9,
		DecodeSteps:   r.DecodeSteps,
		Preempt:       r.KVPreempt,
	}
}

// normalize fills defaults in place; the normalized form doubles as
// the coalescing identity.
func (r WorkloadSpec) normalize() WorkloadSpec {
	if r.Config == "" {
		r.Config = DefaultConfig
	}
	if r.Batch == 0 {
		r.Batch = experiments.DefaultBatch
	}
	if r.Policy == "" {
		r.Policy = DefaultServePolicy
	}
	if r.TimeoutUS == nil {
		v := float64(DefaultServeTimeoutUS)
		r.TimeoutUS = &v
	}
	if r.Requests == 0 {
		r.Requests = DefaultServeRequests
	}
	if r.Seed == 0 {
		r.Seed = experiments.DefaultSeed
	}
	if r.Pattern == workload.PatternDiurnal {
		if r.PatternAmplitude == nil {
			v := float64(DefaultPatternAmplitude)
			r.PatternAmplitude = &v
		}
		if r.PatternPeriodUS == nil && r.Rate > 0 {
			v := float64(r.Requests) / r.Rate * 1e6 / 2
			r.PatternPeriodUS = &v
		}
	}
	return r
}

// validateWorkload applies the server's request-shape limits shared by
// every serving-family endpoint.
func (s *Server) validateWorkload(r WorkloadSpec) error {
	// A replayed trace file carries its own arrivals, so rate becomes an
	// optional rescaling knob there; everywhere else it is required.
	if r.TraceFile != "" && r.Rate == 0 {
		// Replay as recorded.
	} else if r.Rate <= 0 || math.IsNaN(r.Rate) || r.Rate > maxServeRate {
		return fmt.Errorf("rate must be in (0, %g] requests/s, got %v", float64(maxServeRate), r.Rate)
	}
	if err := r.validateTraceSource(); err != nil {
		return err
	}
	if err := s.batchBounds(r.Batch); err != nil {
		return err
	}
	switch {
	case r.Requests <= 0:
		return fmt.Errorf("requests must be positive, got %d", r.Requests)
	case r.Requests > maxSeqLens:
		return fmt.Errorf("requests %d exceeds the %d-request limit", r.Requests, maxSeqLens)
	case *r.TimeoutUS < 0 || math.IsNaN(*r.TimeoutUS) || math.IsInf(*r.TimeoutUS, 0):
		return fmt.Errorf("timeout_us must be a finite non-negative duration, got %v", *r.TimeoutUS)
	}
	if kv := r.kvConfig(); kv != nil {
		if err := kv.Validate(); err != nil {
			return withCode(CodeKVCapacity, fmt.Errorf("kv_capacity_gb: %w", err))
		}
	} else if r.DecodeSteps != 0 || r.KVPreempt != "" {
		return withCode(CodeKVCapacity, fmt.Errorf("decode_steps and kv_preempt need the KV model: set kv_capacity_gb"))
	} else {
		for _, t := range r.Tenants {
			if t.DecodeSteps != 0 {
				return withCode(CodeKVCapacity, fmt.Errorf("tenant cohort %q decode_steps needs the KV model: set kv_capacity_gb", t.Class))
			}
		}
	}
	return seqLenBounds(r.SeqLens)
}

// validateTraceSource checks the arrival-source knobs: the trace file,
// the generator pattern, and the tenant cohorts. Exactly one arrival
// source is in play — a replayed file or a (possibly shaped) generated
// trace.
func (r WorkloadSpec) validateTraceSource() error {
	if r.TraceFile != "" {
		switch {
		case len(r.SeqLens) > 0:
			return fmt.Errorf("trace_file and seqlens are incompatible: the trace carries its own request lengths")
		case len(r.Tenants) > 0:
			return fmt.Errorf("trace_file and tenants are incompatible: the trace carries its own tenants")
		case r.Pattern != "":
			return fmt.Errorf("trace_file and pattern are incompatible: the trace carries its own arrivals")
		}
	}
	switch r.Pattern {
	case "", workload.PatternUniform:
		if r.PatternPeriodUS != nil || r.PatternAmplitude != nil {
			return fmt.Errorf("pattern_period_us and pattern_amplitude need pattern %q", workload.PatternDiurnal)
		}
	case workload.PatternDiurnal:
		if p := r.PatternPeriodUS; p != nil && (*p <= 0 || math.IsNaN(*p) || math.IsInf(*p, 0)) {
			return fmt.Errorf("pattern_period_us must be a positive finite duration, got %v", *p)
		}
		if a := r.PatternAmplitude; a != nil && (*a < 0 || *a >= 1 || math.IsNaN(*a)) {
			return fmt.Errorf("pattern_amplitude must be in [0, 1), got %v", *a)
		}
	default:
		return fmt.Errorf("unknown pattern %q (want %s or %s)", r.Pattern, workload.PatternUniform, workload.PatternDiurnal)
	}
	if len(r.Tenants) > maxTenantCohorts {
		return fmt.Errorf("tenants lists %d cohorts, more than the %d-cohort limit", len(r.Tenants), maxTenantCohorts)
	}
	for _, t := range r.Tenants {
		if t.Class == "" {
			return fmt.Errorf("every tenant cohort needs a class label")
		}
		if t.Count < 1 || t.Count > maxTenantsPerCohort {
			return fmt.Errorf("tenant cohort %q count must be in [1, %d], got %d", t.Class, maxTenantsPerCohort, t.Count)
		}
		if err := seqLenBounds(t.SeqLens); err != nil {
			return fmt.Errorf("tenant cohort %q: %w", t.Class, err)
		}
	}
	return nil
}

// buildWorkloadSetup resolves a normalized workload envelope into its
// workload (with the request's synthetic corpus substituted, when
// given), hardware, batching policy and arrival trace. Every failure
// is a client error (HTTP 400).
func buildWorkloadSetup(req WorkloadSpec) (experiments.Workload, gpusim.Config, serving.Policy, serving.Trace, error) {
	var (
		zeroW  experiments.Workload
		zeroHW gpusim.Config
		zeroT  serving.Trace
	)
	w, err := experiments.ServedWorkloadByName(req.Model, req.Seed)
	if err != nil {
		// Keep the registry's explanatory message for cnn (a model that
		// exists but is not servable); everything else gets the
		// wire-facing model list.
		if req.Model != "cnn" {
			err = fmt.Errorf("unknown model %q (want ds2, gnmt, transformer or seq2seq)", req.Model)
		}
		return zeroW, zeroHW, nil, zeroT, err
	}
	hw, err := configByName(req.Config)
	if err != nil {
		return zeroW, zeroHW, nil, zeroT, err
	}
	policy, err := serving.ParsePolicy(req.Policy, req.Batch, *req.TimeoutUS)
	if err != nil {
		return zeroW, zeroHW, nil, zeroT, err
	}
	if len(req.SeqLens) > 0 {
		corpus, err := dataset.Synthetic(fmt.Sprintf("custom-%s", req.Model), req.SeqLens, w.Train.Vocab)
		if err != nil {
			return zeroW, zeroHW, nil, zeroT, fmt.Errorf("invalid seqlens: %w", err)
		}
		w.Train = corpus
	}
	trace, err := buildTrace(req, w)
	if err != nil {
		return zeroW, zeroHW, nil, zeroT, err
	}
	// A degenerate rate (e.g. denormal-small) can overflow arrival
	// times to +Inf; that is the client's input, so catch it here as a
	// 400 — with the typed bad_trace code — rather than letting the
	// simulation fail with a 500.
	if err := trace.Validate(); err != nil {
		return zeroW, zeroHW, nil, zeroT, codeBadTrace(err)
	}
	return w, hw, policy, trace, nil
}

// codeBadTrace attaches the bad_trace wire code to trace-validation
// failures, leaving other errors untouched.
func codeBadTrace(err error) error {
	if errors.Is(err, workload.ErrBadTrace) {
		return withCode(CodeBadTrace, err)
	}
	return err
}

// buildTrace resolves the envelope's arrival source: a replayed trace
// file, the multi-tenant generator (when tenants or a pattern are
// given), or the default Poisson process.
func buildTrace(req WorkloadSpec, w experiments.Workload) (serving.Trace, error) {
	var zeroT serving.Trace
	if req.TraceFile != "" {
		return loadTraceFile(req.TraceFile, req.Rate)
	}
	if len(req.Tenants) > 0 || req.Pattern != "" {
		spec, err := genSpec(req, w)
		if err != nil {
			return zeroT, err
		}
		return workload.Generate(spec)
	}
	return serving.PoissonTrace(w.Train, req.Requests, req.Rate, req.Seed)
}

// loadTraceFile loads and fully validates a recorded trace, rescaling
// it to the requested rate when one is given. Trace corruption carries
// the bad_trace wire code.
func loadTraceFile(path string, rate float64) (serving.Trace, error) {
	var zeroT serving.Trace
	tr, err := workload.LoadTrace(path)
	if err != nil {
		return zeroT, codeBadTrace(err)
	}
	if len(tr.Requests) > maxSeqLens {
		return zeroT, fmt.Errorf("trace file holds %d requests, more than the %d-request limit", len(tr.Requests), maxSeqLens)
	}
	if rate > 0 {
		if tr, err = tr.ScaleToRate(rate); err != nil {
			return zeroT, err
		}
	}
	return tr, nil
}

// genSpec maps the wire tenant/pattern knobs to the workload
// generator's spec. Cohorts without their own length pool draw from
// the envelope's corpus; no cohorts at all means one anonymous cohort
// (pattern shaping without tenancy).
func genSpec(req WorkloadSpec, w experiments.Workload) (workload.GenSpec, error) {
	cohorts := make([]workload.Cohort, 0, max(1, len(req.Tenants)))
	for _, t := range req.Tenants {
		weight := t.Weight
		if weight == 0 {
			weight = 1
		}
		sls := t.SeqLens
		if len(sls) == 0 {
			sls = w.Train.Lengths
		}
		cohorts = append(cohorts, workload.Cohort{
			Class:       t.Class,
			Tenants:     t.Count,
			Weight:      weight,
			ZipfS:       t.ZipfS,
			SeqLens:     sls,
			DecodeSteps: t.DecodeSteps,
			Burst:       t.Burst,
		})
	}
	if len(cohorts) == 0 {
		cohorts = append(cohorts, workload.Cohort{Tenants: 1, Weight: 1, SeqLens: w.Train.Lengths})
	}
	pattern := workload.Pattern{Kind: req.Pattern}
	if req.Pattern == workload.PatternDiurnal {
		// normalize filled both pointers (rate is validated positive on
		// every generated-trace path before setup runs).
		pattern.PeriodUS = *req.PatternPeriodUS
		pattern.Amplitude = *req.PatternAmplitude
	}
	return workload.GenSpec{
		Requests:   req.Requests,
		RatePerSec: req.Rate,
		Seed:       req.Seed,
		Pattern:    pattern,
		Cohorts:    cohorts,
	}, nil
}
