package server

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step on every reading, so request
// durations measured through it are exactly step and the /metrics
// histogram lands in a known bucket.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

// parseMetrics reads the Prometheus text exposition format into a
// series -> value map, keyed by the full series name including labels.
func parseMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("metrics line %q has no value", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("metrics line %q value: %v", line, err)
		}
		if _, dup := out[line[:i]]; dup {
			t.Fatalf("duplicate series %q", line[:i])
		}
		out[line[:i]] = v
	}
	return out
}

func scrapeMetrics(t *testing.T, s *Server) (map[string]float64, *httptest.ResponseRecorder) {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d, body %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q, want text/plain exposition format", ct)
	}
	return parseMetrics(t, w.Body.String()), w
}

// TestMetricsEndpoint drives a known request mix through the server
// (with a deterministic clock), scrapes /metrics, and asserts the
// parsed families: per-endpoint request counters by status,
// per-endpoint latency histograms with coherent cumulative buckets,
// cache hit rate, service gauges, and snapshot age.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(Options{MaxInflight: 5})
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0), step: 5 * time.Millisecond}
	s.now = clock.Now

	okBody := `{"model":"gnmt","batch":2,"seqlens":[4,7]}`
	if w := postJSON(t, s, "/v1/simulate", okBody); w.Code != http.StatusOK {
		t.Fatalf("simulate: %s", w.Body.String())
	}
	if w := postJSON(t, s, "/v1/simulate", okBody); w.Code != http.StatusOK {
		t.Fatalf("repeat simulate: %s", w.Body.String())
	}
	if w := postJSON(t, s, "/v1/simulate", `{"model":"bert"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad-model simulate: status %d", w.Code)
	}
	wrongMethod := httptest.NewRecorder()
	s.ServeHTTP(wrongMethod, httptest.NewRequest(http.MethodGet, "/v1/simulate", nil))
	if wrongMethod.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/simulate: status %d", wrongMethod.Code)
	}
	health := httptest.NewRecorder()
	s.ServeHTTP(health, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if health.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", health.Code)
	}
	s.ObserveSnapshot(42)

	m, _ := scrapeMetrics(t, s)

	wantCounts := map[string]float64{
		`seqpoint_requests_total{endpoint="/v1/simulate",status="200"}`:               2,
		`seqpoint_requests_total{endpoint="/v1/simulate",status="400"}`:               1,
		`seqpoint_requests_total{endpoint="/v1/simulate",status="405"}`:               1,
		`seqpoint_requests_total{endpoint="/healthz",status="200"}`:                   1,
		`seqpoint_request_duration_seconds_count{endpoint="/v1/simulate"}`:            4,
		`seqpoint_request_duration_seconds_bucket{endpoint="/v1/simulate",le="+Inf"}`: 4,
		// The fake clock makes every request take exactly 5ms.
		`seqpoint_request_duration_seconds_bucket{endpoint="/v1/simulate",le="0.005"}`: 4,
		`seqpoint_inflight`:         0,
		`seqpoint_max_inflight`:     5,
		`seqpoint_draining`:         0,
		`seqpoint_rejected_total`:   0,
		`seqpoint_coalesced_total`:  0,
		`seqpoint_snapshot_entries`: 42,
	}
	for series, want := range wantCounts {
		if got, ok := m[series]; !ok {
			t.Errorf("series %s missing", series)
		} else if got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}

	// The cumulative buckets must be monotone and end at _count.
	var edges []float64
	prefix := `seqpoint_request_duration_seconds_bucket{endpoint="/v1/simulate",le="`
	for series := range m {
		if strings.HasPrefix(series, prefix) && !strings.Contains(series, "+Inf") {
			e, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(series, prefix), `"}`), 64)
			if err != nil {
				t.Fatalf("unparseable le in %s: %v", series, err)
			}
			edges = append(edges, e)
		}
	}
	sort.Float64s(edges)
	if len(edges) != len(latencyEdges) {
		t.Fatalf("bucket series count = %d, want %d", len(edges), len(latencyEdges))
	}
	prev := 0.0
	for _, e := range edges {
		series := prefix + strconv.FormatFloat(e, 'g', -1, 64) + `"}`
		if m[series] < prev {
			t.Fatalf("cumulative bucket %s = %v decreased below %v", series, m[series], prev)
		}
		prev = m[series]
	}
	if inf := m[`seqpoint_request_duration_seconds_bucket{endpoint="/v1/simulate",le="+Inf"}`]; prev > inf {
		t.Fatalf("last finite bucket %v exceeds +Inf bucket %v", prev, inf)
	}

	// Cache counters: the repeat request produced hits; the first one
	// misses. The ratio is hits/(hits+misses), within [0, 1].
	if m[`seqpoint_cache_misses_total`] <= 0 {
		t.Errorf("cache_misses_total = %v, want > 0", m[`seqpoint_cache_misses_total`])
	}
	if m[`seqpoint_cache_hits_total`] <= 0 {
		t.Errorf("cache_hits_total = %v, want > 0 after a repeat request", m[`seqpoint_cache_hits_total`])
	}
	ratio := m[`seqpoint_cache_hit_ratio`]
	if ratio <= 0 || ratio > 1 {
		t.Errorf("cache_hit_ratio = %v, want in (0, 1]", ratio)
	}
	wantRatio := m[`seqpoint_cache_hits_total`] / (m[`seqpoint_cache_hits_total`] + m[`seqpoint_cache_misses_total`])
	if diff := ratio - wantRatio; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("cache_hit_ratio = %v, want hits/(hits+misses) = %v", ratio, wantRatio)
	}

	if age, ok := m[`seqpoint_snapshot_age_seconds`]; !ok {
		t.Error("snapshot_age_seconds missing after ObserveSnapshot")
	} else if age <= 0 {
		t.Errorf("snapshot_age_seconds = %v, want > 0 under the stepping clock", age)
	}

	// The scrape itself was recorded: a second scrape sees the first.
	m2, _ := scrapeMetrics(t, s)
	if got := m2[`seqpoint_requests_total{endpoint="/metrics",status="200"}`]; got != 1 {
		t.Errorf("second scrape: /metrics requests_total = %v, want 1", got)
	}
}

// TestMetricsBeforeSnapshot: a server that never persisted a cache
// exposes no snapshot-age series (age would be meaningless), and a
// fresh server's scrape parses cleanly with zero request series.
func TestMetricsBeforeSnapshot(t *testing.T) {
	s := testServer(Options{})
	m, _ := scrapeMetrics(t, s)
	if _, ok := m[`seqpoint_snapshot_age_seconds`]; ok {
		t.Error("snapshot_age_seconds present before any snapshot")
	}
	if _, ok := m[`seqpoint_snapshot_entries`]; ok {
		t.Error("snapshot_entries present before any snapshot")
	}
	if m[`seqpoint_cache_hit_ratio`] != 0 {
		t.Errorf("cold cache_hit_ratio = %v, want 0", m[`seqpoint_cache_hit_ratio`])
	}
}

// TestMetricsWrongMethod: /metrics is GET-only and says so via Allow.
func TestMetricsWrongMethod(t *testing.T) {
	s := testServer(Options{})
	w := postJSON(t, s, "/metrics", ``)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: status %d, want 405", w.Code)
	}
	if allow := w.Header().Get("Allow"); allow != http.MethodGet {
		t.Fatalf("Allow = %q, want GET", allow)
	}
	if er := decodeErrorBody(t, w.Body.String()); er.Code != CodeMethodNotAllowed {
		t.Fatalf("code = %q, want %q", er.Code, CodeMethodNotAllowed)
	}
}

// BenchmarkMetricsRender measures one /metrics render over a warmed
// server — the scrape-path cost a Prometheus poller pays every cycle.
func BenchmarkMetricsRender(b *testing.B) {
	s := testServer(Options{})
	for _, path := range s.metrics.paths {
		em := s.metrics.endpoint(path)
		for i := 0; i < 256; i++ {
			em.observe(200, float64(i)*0.001)
		}
	}
	s.ObserveSnapshot(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		s.renderMetrics(&sb)
	}
}

// TestMetricsDrainingGauge: the draining gauge flips with drain mode.
func TestMetricsDrainingGauge(t *testing.T) {
	s := testServer(Options{})
	s.StartDrain()
	m, _ := scrapeMetrics(t, s)
	if m[`seqpoint_draining`] != 1 {
		t.Errorf("seqpoint_draining = %v while draining, want 1", m[`seqpoint_draining`])
	}
}
