package profiler

import (
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
)

// Data-parallel step profiling. Under data parallelism every GPU holds
// a full model replica and computes the iteration on its 1/N shard of
// the global minibatch; the replicas then all-reduce the gradient (one
// element per trainable parameter) over the interconnect before the
// optimizer applies it. Because the replicas run identical kernel
// streams in lockstep, one shard profile plus the analytical collective
// cost describes the whole step.

// ProfileStep prices one data-parallel training step of m at the given
// *global* batch: the per-GPU compute on the shard batch plus the
// overlap-adjusted ring/mesh all-reduce of the model's gradient bytes.
// With a single-GPU cluster it reduces exactly to ProfileIteration.
func ProfileStep(sim *gpusim.Simulator, cl gpusim.ClusterConfig, m models.Model, globalBatch, seqLen int) (IterationProfile, error) {
	cl = cl.Normalized()
	if err := cl.Validate(); err != nil {
		return IterationProfile{}, err
	}
	p, err := ProfileIteration(sim, m, cl.ShardBatch(globalBatch), seqLen)
	if err != nil {
		return IterationProfile{}, err
	}
	if cl.GPUs > 1 {
		comm := cl.AllReduceUS(models.GradientBytes(m))
		p.CommUS = cl.ExposedCommUS(comm, p.TimeUS)
		p.TimeUS += p.CommUS
	}
	return p, nil
}

// ProfileEvalStep prices one data-parallel evaluation step: a
// forward-only pass on the shard batch. No gradients exist, so there is
// no communication term; evaluation scales with the shard size alone.
func ProfileEvalStep(sim *gpusim.Simulator, cl gpusim.ClusterConfig, m models.Model, globalBatch, seqLen int) (IterationProfile, error) {
	cl = cl.Normalized()
	if err := cl.Validate(); err != nil {
		return IterationProfile{}, err
	}
	return ProfileEval(sim, m, cl.ShardBatch(globalBatch), seqLen)
}
