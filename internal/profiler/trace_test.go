package profiler

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"seqpoint/internal/models"
)

func TestTraceIterationMatchesProfile(t *testing.T) {
	s := sim(t)
	m := models.NewDS2()
	invs, err := TraceIteration(s, m, 16, 80)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileIteration(s, m, 16, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != prof.NumKernels {
		t.Errorf("trace has %d invocations, profile %d", len(invs), prof.NumKernels)
	}
	var total float64
	for _, inv := range invs {
		if inv.TimeUS <= 0 {
			t.Errorf("kernel %s priced at %v", inv.Kernel, inv.TimeUS)
		}
		total += inv.TimeUS
	}
	if math.Abs(total-prof.TimeUS) > 1e-6*prof.TimeUS {
		t.Errorf("trace total %v != profile %v", total, prof.TimeUS)
	}
}

func TestTraceIterationInvalidArgs(t *testing.T) {
	s := sim(t)
	if _, err := TraceIteration(s, models.NewDS2(), 0, 10); err == nil {
		t.Error("zero batch should error")
	}
	if _, err := TraceIteration(s, models.NewDS2(), 8, -1); err == nil {
		t.Error("negative seqlen should error")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	s := sim(t)
	invs, err := TraceIteration(s, models.NewGNMT(), 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, invs); err != nil {
		t.Fatal(err)
	}

	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args map[string]string
		} `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != len(invs) {
		t.Fatalf("events = %d, want %d", len(parsed.TraceEvents), len(invs))
	}
	if parsed.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", parsed.DisplayUnit)
	}
	// Events lie back to back: each starts where the previous ended.
	var cursor float64
	for i, ev := range parsed.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %d phase %q, want complete event", i, ev.Ph)
		}
		if math.Abs(ev.TS-cursor) > 1e-6 {
			t.Fatalf("event %d starts at %v, want %v", i, ev.TS, cursor)
		}
		if ev.Name == "" || ev.Cat == "" {
			t.Errorf("event %d missing identity", i)
		}
		if ev.Args["signature"] == "" {
			t.Errorf("event %d missing signature arg", i)
		}
		cursor = ev.TS + ev.Dur
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
}
