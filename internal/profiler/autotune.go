package profiler

import (
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/tensor"
)

// Autotune models the kernel-selection phase high-level frameworks run
// the first time they meet a new GEMM/convolution shape (Section IV-C2
// of the paper): the library times several candidate kernels and caches
// the winner. Each *new* shape signature therefore adds a one-time cost;
// because every unique sequence length introduces new shapes, autotune
// overhead concentrates in an SQNN's first epoch — exactly the paper's
// observation that autotune affects the first iteration of CNNs but the
// first epoch of SQNNs.
const (
	// autotuneTrials is how many candidate kernels the library times
	// per new shape.
	autotuneTrials = 12
	// autotuneSetupUS is the fixed per-shape bookkeeping cost.
	autotuneSetupUS = 400.0
)

// AutotuneUS returns the autotune cost incurred by one iteration of m at
// the given sequence length, charging only for shape signatures not yet
// in seen, and records the newly seen signatures. Only GEMM and
// convolution shapes are tuned (rocBLAS/MIOpen behaviour); pointwise
// kernels dispatch statically.
func AutotuneUS(sim *gpusim.Simulator, m models.Model, batch, seqLen int, seen map[string]bool) float64 {
	var us float64
	for _, op := range m.IterationOps(batch, seqLen) {
		if op.Kind() != tensor.KindGEMM && op.Kind() != tensor.KindConv2D {
			continue
		}
		sig := op.Signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		inv := sim.Price(op)
		us += autotuneSetupUS + autotuneTrials*inv.TimeUS
	}
	return us
}
