package profiler

import (
	"math"
	"testing"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/tensor"
)

func sim(t *testing.T) *gpusim.Simulator {
	t.Helper()
	s, err := gpusim.New(gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestProfileIterationAggregates(t *testing.T) {
	s := sim(t)
	m := models.NewDS2()
	p, err := ProfileIteration(s, m, 16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.SeqLen != 100 || p.Batch != 16 {
		t.Errorf("identity: %+v", p)
	}
	if p.TimeUS <= 0 {
		t.Error("iteration time must be positive")
	}
	if p.NumKernels != len(m.IterationOps(16, 100)) {
		t.Errorf("NumKernels = %d, want one per op", p.NumKernels)
	}
	// Kernel breakdown must sum back to the totals.
	var sumT float64
	var sumCount int
	for _, k := range p.Kernels {
		sumT += k.TimeUS
		sumCount += k.Count
	}
	if math.Abs(sumT-p.TimeUS) > 1e-6*p.TimeUS {
		t.Errorf("kernel times sum to %v, total %v", sumT, p.TimeUS)
	}
	if sumCount != p.NumKernels {
		t.Errorf("kernel counts sum to %d, total %d", sumCount, p.NumKernels)
	}
	// Sorted by descending time.
	for i := 1; i < len(p.Kernels); i++ {
		if p.Kernels[i].TimeUS > p.Kernels[i-1].TimeUS {
			t.Error("kernels not sorted by time")
			break
		}
	}
	// Label shares also sum to the total (every op is labeled).
	var sumLabel float64
	for _, us := range p.LabelTimeUS {
		sumLabel += us
	}
	if math.Abs(sumLabel-p.TimeUS) > 1e-6*p.TimeUS {
		t.Errorf("label times sum to %v, total %v", sumLabel, p.TimeUS)
	}
}

func TestProfileIterationInvalidArgs(t *testing.T) {
	s := sim(t)
	m := models.NewDS2()
	if _, err := ProfileIteration(s, m, 0, 10); err == nil {
		t.Error("zero batch should error")
	}
	if _, err := ProfileIteration(s, m, 10, 0); err == nil {
		t.Error("zero seqlen should error")
	}
	if _, err := ProfileEval(s, m, 0, 10); err == nil {
		t.Error("eval zero batch should error")
	}
}

func TestProfileEvalCheaperThanTraining(t *testing.T) {
	s := sim(t)
	m := models.NewGNMT()
	train, err := ProfileIteration(s, m, 16, 40)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := ProfileEval(s, m, 16, 40)
	if err != nil {
		t.Fatal(err)
	}
	if eval.TimeUS >= train.TimeUS {
		t.Errorf("eval %v us should be cheaper than training %v us", eval.TimeUS, train.TimeUS)
	}
}

func TestProfileDeterministic(t *testing.T) {
	s := sim(t)
	m := models.NewGNMT()
	a, err := ProfileIteration(s, m, 16, 37)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProfileIteration(s, m, 16, 37)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeUS != b.TimeUS || a.NumKernels != b.NumKernels {
		t.Error("profiles must be deterministic")
	}
}

func TestUniqueKernelsAndOverlap(t *testing.T) {
	s := sim(t)
	m := models.NewDS2()
	p1, err := ProfileIteration(s, m, 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProfileIteration(s, m, 64, 400)
	if err != nil {
		t.Fatal(err)
	}
	u1 := p1.UniqueKernels()
	if len(u1) != len(p1.Kernels) {
		t.Errorf("unique set %d != kernel rows %d", len(u1), len(p1.Kernels))
	}

	common, only1, only2 := Overlap(p1, p2)
	if common+only1 != len(u1) {
		t.Errorf("common %d + only1 %d != |p1| %d", common, only1, len(u1))
	}
	if common+only2 != len(p2.UniqueKernels()) {
		t.Errorf("common %d + only2 %d != |p2|", common, only2)
	}
	// Self overlap is total.
	c, o1, o2 := Overlap(p1, p1)
	if o1 != 0 || o2 != 0 || c != len(u1) {
		t.Errorf("self overlap = (%d,%d,%d)", c, o1, o2)
	}
	// Distant SLs differ in at least one kernel (Fig. 5 behaviour).
	if only1+only2 == 0 {
		t.Error("SL 100 and 400 iterations should differ in some kernels")
	}
}

func TestTimeShareByKind(t *testing.T) {
	s := sim(t)
	p, err := ProfileIteration(s, models.NewGNMT(), 16, 30)
	if err != nil {
		t.Fatal(err)
	}
	shares := p.TimeShareByKind()
	var total float64
	for _, v := range shares {
		if v < 0 {
			t.Error("negative share")
		}
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", total)
	}
	if shares[tensor.KindGEMM] < 0.3 {
		t.Errorf("GEMMs should dominate GNMT runtime, got %v", shares[tensor.KindGEMM])
	}
}

func TestTopKernels(t *testing.T) {
	s := sim(t)
	p, err := ProfileIteration(s, models.NewDS2(), 16, 80)
	if err != nil {
		t.Fatal(err)
	}
	top := p.TopKernels(3)
	if len(top) != 3 {
		t.Fatalf("TopKernels(3) = %d entries", len(top))
	}
	if top[0].TimeUS < top[2].TimeUS {
		t.Error("top kernels not in descending order")
	}
	all := p.TopKernels(1 << 20)
	if len(all) != len(p.Kernels) {
		t.Error("overlong n should clamp")
	}
}

func TestThroughput(t *testing.T) {
	p := IterationProfile{Batch: 64, TimeUS: 5e5}
	if got := p.Throughput(); math.Abs(got-128) > 1e-9 {
		t.Errorf("Throughput = %v, want 128 samples/s", got)
	}
	if (IterationProfile{}).Throughput() != 0 {
		t.Error("zero-time profile throughput should be 0")
	}
}

func TestAutotuneChargesNewShapesOnce(t *testing.T) {
	s := sim(t)
	m := models.NewDS2()
	seen := make(map[string]bool)
	first := AutotuneUS(s, m, 16, 100, seen)
	if first <= 0 {
		t.Fatal("first iteration at a new SL must pay autotune")
	}
	// Same SL again: every shape already tuned.
	if again := AutotuneUS(s, m, 16, 100, seen); again != 0 {
		t.Errorf("re-tuning already-seen shapes: %v us", again)
	}
	// A new SL introduces new SL-dependent shapes but shares the
	// fixed-shape kernels (per-timestep projections) already tuned.
	second := AutotuneUS(s, m, 16, 120, seen)
	if second <= 0 {
		t.Error("new SL should introduce new GEMM shapes")
	}
	scratch := AutotuneUS(s, m, 16, 120, make(map[string]bool))
	if second >= scratch {
		t.Errorf("incremental tuning (%v us) should cost less than from scratch (%v us)", second, scratch)
	}
}

func TestAutotuneOnlyTunesGEMMAndConv(t *testing.T) {
	s := sim(t)
	m := models.NewGNMT()
	seen := make(map[string]bool)
	AutotuneUS(s, m, 8, 20, seen)
	for sig := range seen {
		if len(sig) < 4 || (sig[:4] != "gemm" && sig[:4] != "conv") {
			t.Errorf("tuned non-GEMM/conv shape %q", sig)
		}
	}
}
