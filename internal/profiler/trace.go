package profiler

import (
	"encoding/json"
	"fmt"
	"io"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
)

// TraceIteration returns the raw kernel-invocation stream of one
// training iteration — the unaggregated equivalent of a Radeon Compute
// Profiler trace, with each kernel's modeled start time assuming
// back-to-back execution on one queue.
func TraceIteration(sim *gpusim.Simulator, m models.Model, batch, seqLen int) ([]gpusim.Invocation, error) {
	if batch <= 0 || seqLen <= 0 {
		return nil, fmt.Errorf("profiler: invalid iteration batch=%d seqLen=%d", batch, seqLen)
	}
	ops := m.IterationOps(batch, seqLen)
	invs := make([]gpusim.Invocation, len(ops))
	for i, op := range ops {
		invs[i] = sim.Price(op)
	}
	return invs, nil
}

// traceEvent is one Chrome trace-event ("traceEvents" array element) in
// the complete-event ("X") form.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the Chrome trace-event JSON envelope.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	DisplayUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes a kernel-invocation stream as a Chrome
// trace-event JSON file (loadable in chrome://tracing or Perfetto),
// laying the kernels back to back on a single GPU-queue track. This is
// the format real profiling workflows around the paper's tooling
// exchange, and makes the simulated iterations visually inspectable.
func WriteChromeTrace(w io.Writer, invs []gpusim.Invocation) error {
	tf := traceFile{DisplayUnit: "ms", TraceEvents: make([]traceEvent, 0, len(invs))}
	var cursor float64
	for _, inv := range invs {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: inv.Kernel,
			Cat:  inv.Kind.String(),
			Ph:   "X",
			TS:   cursor,
			Dur:  inv.TimeUS,
			PID:  0,
			TID:  0,
			Args: map[string]string{
				"signature": inv.Signature,
				"label":     inv.Label,
			},
		})
		cursor += inv.TimeUS
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
