// Package profiler collects per-iteration execution profiles from the
// GPU model, standing in for the Radeon Compute Profiler in the paper's
// methodology: for each training iteration it records total runtime,
// aggregate hardware counters, and a kernel-level breakdown (which
// kernels ran, how often, for how long). The comparison utilities
// (unique-kernel overlap, runtime distribution by kernel group) are the
// measurements behind the paper's Figs 4, 5, 6, and 8.
package profiler

import (
	"fmt"
	"sort"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/tensor"
)

// KernelStat aggregates all invocations of one concrete kernel within an
// iteration.
type KernelStat struct {
	// Kernel is the concrete kernel symbol.
	Kernel string
	// Kind is the op class the kernel implements.
	Kind tensor.Kind
	// Count is the number of dynamic invocations.
	Count int
	// TimeUS is the summed runtime.
	TimeUS float64
	// Counters are the summed hardware counters.
	Counters gpusim.Counters
}

// IterationProfile is the execution profile of one training iteration:
// the paper's definition (Section IV-A) — "the distribution of invoked
// kernels and their runtimes".
type IterationProfile struct {
	// SeqLen is the padded sequence length of the iteration's batch.
	SeqLen int
	// Batch is the minibatch size.
	Batch int
	// TimeUS is the iteration runtime (all kernels, incl. launches).
	// For a cluster step profile (see ProfileStep) it additionally
	// includes the exposed gradient-communication time.
	TimeUS float64
	// CommUS is the exposed (overlap-adjusted) gradient all-reduce time
	// included in TimeUS; zero for single-GPU profiles.
	CommUS float64
	// NumKernels is the dynamic kernel-invocation count.
	NumKernels int
	// Counters are the iteration-aggregate hardware counters.
	Counters gpusim.Counters
	// Kernels is the per-kernel breakdown, sorted by descending time.
	Kernels []KernelStat
	// LabelTimeUS maps layer-level op labels ("classifier",
	// "enc_lstm_0_xproj", ...) to their summed runtime; this is the
	// grouping behind the paper's Fig. 6/Fig. 8 "GEMM-1"/"GEMM-2"
	// distributions.
	LabelTimeUS map[string]float64
}

// ProfileIteration runs one training iteration of m under sim and
// aggregates the trace.
func ProfileIteration(sim *gpusim.Simulator, m models.Model, batch, seqLen int) (IterationProfile, error) {
	if batch <= 0 || seqLen <= 0 {
		return IterationProfile{}, fmt.Errorf("profiler: invalid iteration batch=%d seqLen=%d", batch, seqLen)
	}
	ops := m.IterationOps(batch, seqLen)
	return profileOps(sim, ops, batch, seqLen)
}

// ProfileEval runs one forward-only evaluation pass.
func ProfileEval(sim *gpusim.Simulator, m models.Model, batch, seqLen int) (IterationProfile, error) {
	if batch <= 0 || seqLen <= 0 {
		return IterationProfile{}, fmt.Errorf("profiler: invalid eval batch=%d seqLen=%d", batch, seqLen)
	}
	ops := m.EvalOps(batch, seqLen)
	return profileOps(sim, ops, batch, seqLen)
}

func profileOps(sim *gpusim.Simulator, ops []tensor.Op, batch, seqLen int) (IterationProfile, error) {
	p := IterationProfile{
		SeqLen:      seqLen,
		Batch:       batch,
		LabelTimeUS: make(map[string]float64),
	}
	byKernel := make(map[string]*KernelStat)
	for _, op := range ops {
		inv := sim.Price(op)
		p.TimeUS += inv.TimeUS
		p.NumKernels++
		p.Counters.Add(inv.Counters)
		ks, ok := byKernel[inv.Kernel]
		if !ok {
			ks = &KernelStat{Kernel: inv.Kernel, Kind: inv.Kind}
			byKernel[inv.Kernel] = ks
		}
		ks.Count++
		ks.TimeUS += inv.TimeUS
		ks.Counters.Add(inv.Counters)
		if inv.Label != "" {
			p.LabelTimeUS[inv.Label] += inv.TimeUS
		}
	}
	p.Kernels = make([]KernelStat, 0, len(byKernel))
	for _, ks := range byKernel {
		p.Kernels = append(p.Kernels, *ks)
	}
	sort.Slice(p.Kernels, func(i, j int) bool {
		if p.Kernels[i].TimeUS != p.Kernels[j].TimeUS {
			return p.Kernels[i].TimeUS > p.Kernels[j].TimeUS
		}
		return p.Kernels[i].Kernel < p.Kernels[j].Kernel
	})
	return p, nil
}

// UniqueKernels returns the set of distinct kernel symbols invoked.
func (p IterationProfile) UniqueKernels() map[string]struct{} {
	set := make(map[string]struct{}, len(p.Kernels))
	for _, k := range p.Kernels {
		set[k.Kernel] = struct{}{}
	}
	return set
}

// Overlap compares the unique-kernel sets of two iterations, returning
// the counts behind one bar group of the paper's Fig. 5: kernels common
// to both, kernels only in p, and kernels only in q.
func Overlap(p, q IterationProfile) (common, onlyP, onlyQ int) {
	ps, qs := p.UniqueKernels(), q.UniqueKernels()
	for k := range ps {
		if _, ok := qs[k]; ok {
			common++
		} else {
			onlyP++
		}
	}
	for k := range qs {
		if _, ok := ps[k]; !ok {
			onlyQ++
		}
	}
	return common, onlyP, onlyQ
}

// TimeShareByKind returns the fraction of iteration runtime spent in
// each op class (GEMM, elementwise, reduce, ...), the quantity the
// paper's Fig. 6 plots per sequence length.
func (p IterationProfile) TimeShareByKind() map[tensor.Kind]float64 {
	shares := make(map[tensor.Kind]float64)
	if p.TimeUS == 0 {
		return shares
	}
	for _, k := range p.Kernels {
		shares[k.Kind] += k.TimeUS / p.TimeUS
	}
	return shares
}

// TopKernels returns the n longest-running kernels.
func (p IterationProfile) TopKernels(n int) []KernelStat {
	if n > len(p.Kernels) {
		n = len(p.Kernels)
	}
	return p.Kernels[:n]
}

// Throughput returns training throughput in samples per second, the
// paper's speedup metric (Section VI-C).
func (p IterationProfile) Throughput() float64 {
	if p.TimeUS == 0 {
		return 0
	}
	return float64(p.Batch) / (p.TimeUS / 1e6)
}
