package profiler

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/tensor"
)

// TestChromeTraceRoundTrip writes a synthetic invocation stream with
// known fields and parses it back, asserting every field — name,
// category, label, duration, and the cumulative timeline — survives the
// serialization, not just that the JSON parses.
func TestChromeTraceRoundTrip(t *testing.T) {
	invs := []gpusim.Invocation{
		{Kernel: "gemm_nn_128", Signature: "gemm/128x64x32", Label: "classifier", Kind: tensor.KindGEMM, TimeUS: 12.5},
		{Kernel: "pointwise_tanh", Signature: "ew/4096", Label: "", Kind: tensor.KindElementwise, TimeUS: 0.75},
		{Kernel: "reduce_sum", Signature: "red/512", Label: "softmax", Kind: tensor.KindReduction, TimeUS: 3.25},
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, invs); err != nil {
		t.Fatal(err)
	}

	var parsed struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.TraceEvents) != len(invs) {
		t.Fatalf("round trip lost events: %d != %d", len(parsed.TraceEvents), len(invs))
	}

	var cursor float64
	for i, ev := range parsed.TraceEvents {
		want := invs[i]
		if ev.Name != want.Kernel {
			t.Errorf("event %d name %q, want %q", i, ev.Name, want.Kernel)
		}
		if ev.Cat != want.Kind.String() {
			t.Errorf("event %d category %q, want %q", i, ev.Cat, want.Kind.String())
		}
		if ev.Dur != want.TimeUS {
			t.Errorf("event %d duration %v, want %v", i, ev.Dur, want.TimeUS)
		}
		if ev.Args["signature"] != want.Signature || ev.Args["label"] != want.Label {
			t.Errorf("event %d args %+v, want signature %q label %q", i, ev.Args, want.Signature, want.Label)
		}
		if math.Abs(ev.TS-cursor) > 1e-12 {
			t.Errorf("event %d starts at %v, want cumulative %v", i, ev.TS, cursor)
		}
		cursor += want.TimeUS
	}
}

// failWriter errors after n successful writes.
type failWriter struct{ n int }

var errSink = errors.New("sink failed")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errSink
	}
	w.n--
	return len(p), nil
}

// TestWriteChromeTracePropagatesWriterError: a failing sink must
// surface its error instead of being swallowed.
func TestWriteChromeTracePropagatesWriterError(t *testing.T) {
	invs := []gpusim.Invocation{{Kernel: "k", Kind: tensor.KindGEMM, TimeUS: 1}}
	if err := WriteChromeTrace(&failWriter{}, invs); !errors.Is(err, errSink) {
		t.Errorf("writer error not propagated: %v", err)
	}
}

// TestStepProfileRoundTripThroughTrace: the cluster step profile's
// compute share must equal the traced single-GPU iteration at the shard
// batch — the communication term is purely additive.
func TestStepProfileRoundTripThroughTrace(t *testing.T) {
	s := sim(t)
	m := models.NewGNMT()
	cl := gpusim.ClusterConfig{GPUs: 4, Topology: gpusim.TopologyRing, LinkGBps: 25, LinkLatencyUS: 1.5, Overlap: 0.5}

	step, err := ProfileStep(s, cl, m, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := ProfileIteration(s, m, cl.ShardBatch(64), 20)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := step.TimeUS-step.CommUS, shard.TimeUS; math.Abs(got-want) > 1e-9*want {
		t.Errorf("step compute share %v != shard iteration %v", got, want)
	}
	if step.NumKernels != shard.NumKernels {
		t.Errorf("step kernels %d != shard kernels %d", step.NumKernels, shard.NumKernels)
	}
	if step.CommUS < 0 {
		t.Errorf("negative communication %v", step.CommUS)
	}
}
