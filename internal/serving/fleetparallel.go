package serving

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Parallel replica advancement. Between two routing barriers (the
// arrival timestamps of the trace) replicas evolve independently: a
// replica's completions, wake-deadline consults and dispatches read
// and write only its own state, the shared stateless policy, and the
// mutex-guarded price table. FleetSpec.Parallelism > 1 exploits that:
// each round advances every replica with pending work to the next
// arrival time concurrently, then a serial barrier routes the
// arrivals and merges the round's result deltas in a fixed order.
//
// Byte-identity with the serial loop holds because
//   - per-replica trajectories are identical (same consult times, same
//     policy inputs, same prices);
//   - the one order-sensitive global accumulation — res.BusyUS, a
//     float sum in dispatch order — is replayed at the barrier from
//     per-replica dispatch logs merged by (time, replica ID), exactly
//     the order the serial loop dispatches in;
//   - everything else merged at the barrier is order-free (counts,
//     maxima, disjoint per-request metric writes).
// Autoscaled fleets never take this path: the scaler inspects every
// replica at every event, so no independent stretch exists.

// roundWorkers is the number of concurrent replica-advancement workers
// the run uses; <= 1 means the serial loop handles everything.
func (f *fleetRun) roundWorkers() int {
	w := f.spec.Parallelism
	if f.spec.Autoscale != nil {
		return 1
	}
	if w > len(f.replicas) {
		w = len(f.replicas)
	}
	return w
}

// dispatchRec logs one batch launch for deterministic BusyUS replay.
type dispatchRec struct {
	at      float64
	latency float64
	replica int
}

// roundDelta is one replica's order-free contribution to a round,
// merged serially at the barrier. batches counts priced batches
// (capacity waves under the KV model), completions retired busy
// periods — they coincide only with KV off, and the busy-count merge
// needs the latter.
type roundDelta struct {
	done        int
	batches     int
	completions int
	makespan    float64
	dlog        []dispatchRec
	err         error
}

// runRounds advances the fleet to the end of the arrival trace using
// parallel rounds; the caller's serial loop finishes the drain. On
// return every replica's heap key and dirty flag reflect its state,
// so the serial loop continues seamlessly.
func (f *fleetRun) runRounds() error {
	trace := f.spec.Trace.Requests
	workers := f.roundWorkers()
	deltas := make([]roundDelta, len(f.replicas))
	due := make([]int, 0, len(f.replicas))
	var wg sync.WaitGroup

	for f.next < len(trace) {
		tA := trace[f.next].ArrivalUS
		tPrev := f.clock

		// Due set: replicas owing a consult at tPrev (the dirty set,
		// whose inDirty flags double as the dedupe marker here) plus
		// replicas whose next self event lands at or before the
		// barrier. Events created mid-round stay replica-local, so
		// nothing else can need advancing.
		due = append(due[:0], f.dirty...)
		f.dirty = f.dirty[:0]
		for len(f.heap.heap) > 0 {
			id := f.heap.heap[0]
			if f.heap.keys[id] > tA {
				break
			}
			f.heap.update(id, math.Inf(1))
			if !f.inDirty[id] {
				f.inDirty[id] = true
				due = append(due, id)
			}
		}
		sort.Ints(due)
		for _, id := range due {
			f.inDirty[id] = false
		}

		if n := len(due); n > 0 {
			if workers > 1 && n > 1 {
				w := workers
				if w > n {
					w = n
				}
				wg.Add(w)
				for k := 0; k < w; k++ {
					go func(k int) {
						defer wg.Done()
						for i := k; i < n; i += w {
							id := due[i]
							deltas[id] = roundDelta{dlog: deltas[id].dlog[:0]}
							f.advanceReplica(f.replicas[id], tPrev, tA, &deltas[id])
						}
					}(k)
				}
				wg.Wait()
			} else {
				for _, id := range due {
					deltas[id] = roundDelta{dlog: deltas[id].dlog[:0]}
					f.advanceReplica(f.replicas[id], tPrev, tA, &deltas[id])
				}
			}
			if err := f.mergeRound(due, deltas); err != nil {
				return err
			}
		}

		f.clock = tA
		if err := f.routeArrivals(); err != nil {
			return err
		}
	}
	return nil
}

// mergeRound folds the round's per-replica deltas into the global
// result in replica-ID order, replaying dispatches chronologically so
// the BusyUS float accumulation matches the serial loop bit-for-bit.
// due must be sorted ascending.
func (f *fleetRun) mergeRound(due []int, deltas []roundDelta) error {
	f.dlogScratch = f.dlogScratch[:0]
	for _, id := range due {
		d := &deltas[id]
		if d.err != nil {
			// With a contract-violating policy the serial loop would
			// stop at the chronologically first failure; concurrent
			// advancement reports the lowest failing replica instead —
			// deterministic, though possibly a different instance of
			// the same bug.
			return d.err
		}
		f.done += d.done
		f.res.Batches += d.batches
		f.busyCount += len(d.dlog) - d.completions
		if d.makespan > f.res.MakespanUS {
			f.res.MakespanUS = d.makespan
		}
		f.dlogScratch = append(f.dlogScratch, d.dlog...)
		r := f.replicas[id]
		f.refreshKey(r)
		if !r.busy && r.needConsult {
			f.markDirty(id)
		}
	}
	// Insertion sort by (time, replica): round logs are tiny and
	// mostly ordered, and this avoids a per-round sort.Slice closure.
	log := f.dlogScratch
	for i := 1; i < len(log); i++ {
		rec := log[i]
		j := i - 1
		for j >= 0 && (log[j].at > rec.at || (log[j].at == rec.at && log[j].replica > rec.replica)) {
			log[j+1] = log[j]
			j--
		}
		log[j+1] = rec
	}
	for _, rec := range log {
		f.res.BusyUS += rec.latency
	}
	return nil
}

// advanceReplica runs replica r's event loop from the last barrier at
// tPrev up to (and at, for completions) the next barrier tA. All
// mutations are r-local or recorded in d; consults landing exactly on
// tA are deferred past the barrier's routing, matching the serial
// loop's dispatch-after-route order.
func (f *fleetRun) advanceReplica(r *fleetReplica, tPrev, tA float64, d *roundDelta) {
	now := tPrev
	for {
		if !r.busy && len(r.queue) > 0 {
			for r.needConsult || now >= r.wakeAt {
				dec := f.spec.Policy.Decide(r.queue, now, tA)
				if dec.Dispatch {
					if err := f.launchLocal(r, dec.Pick, now, d); err != nil {
						d.err = err
						return
					}
					break
				}
				r.needConsult = false
				// tA is finite, so the "no future event" stall of the
				// serial loop cannot arise inside a round.
				if !math.IsInf(dec.WaitUntilUS, 1) && dec.WaitUntilUS <= now {
					d.err = fmt.Errorf("serving: policy %q asked to wait until the past (%v at clock %v)",
						f.spec.Policy.Name(), dec.WaitUntilUS, now)
					return
				}
				r.wakeAt = dec.WaitUntilUS
				if r.consults++; r.consults > f.maxBatch+policyConsultSlack {
					d.err = fmt.Errorf("serving: policy %q consulted %d times on replica %d without dispatching",
						f.spec.Policy.Name(), r.consults, r.id)
					return
				}
				if now < r.wakeAt {
					break
				}
			}
		}
		var e float64
		switch {
		case r.busy:
			e = r.doneAt
		case len(r.queue) > 0:
			e = r.wakeAt
		default:
			return
		}
		if e > tA || (!r.busy && e >= tA) {
			// Beyond the barrier — or a wake landing exactly on it,
			// which the serial loop consults only after routing.
			return
		}
		now = e
		if r.busy {
			f.completeLocal(r, d)
			if now >= tA {
				// Completion exactly on the barrier: its follow-up
				// consult happens after routing, like the serial loop's
				// dispatch pass.
				return
			}
		} else {
			r.needConsult = true
		}
	}
}

// completeLocal retires r's in-flight batch into r-local state and the
// round delta (plus the disjoint per-request metric slots).
func (f *fleetRun) completeLocal(r *fleetReplica, d *roundDelta) {
	n, waves := f.retireBatch(r)
	d.done += n
	d.batches += waves
	d.completions++
	if r.doneAt > d.makespan {
		d.makespan = r.doneAt
	}
	r.needConsult = len(r.queue) > 0
}

// launchLocal is launch for the parallel path: identical replica-local
// effects, with the global accumulations (BusyUS order, busy count,
// batch count) deferred to the barrier merge via the dispatch log.
func (f *fleetRun) launchLocal(r *fleetReplica, pick []int, now float64, d *roundDelta) error {
	lat, err := f.startBatch(r, pick, now)
	if err != nil {
		return err
	}
	d.dlog = append(d.dlog, dispatchRec{at: now, latency: lat, replica: r.id})
	return nil
}
