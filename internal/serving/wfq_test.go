package serving

import (
	"bytes"
	"math"
	"testing"

	"seqpoint/internal/dataset"
)

// tenantTrace builds a validated trace directly from (arrival, SL,
// tenant) triples.
func tenantTrace(t *testing.T, arrivals []float64, sls []int, tenants []string) Trace {
	t.Helper()
	reqs := make([]Request, len(arrivals))
	for i := range reqs {
		reqs[i] = Request{ID: i, ArrivalUS: arrivals[i], SeqLen: sls[i], Tenant: tenants[i]}
	}
	tr := Trace{Name: "tenant-test", Requests: reqs}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWFQValidation(t *testing.T) {
	if _, err := NewWFQBatch(0, 100); err == nil {
		t.Error("zero batch size should error")
	}
	if _, err := NewWFQBatch(4, -1); err == nil {
		t.Error("negative timeout should error")
	}
	if _, err := NewWFQBatch(4, math.Inf(1)); err == nil {
		t.Error("infinite timeout should error")
	}
	p, err := NewWFQBatch(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxBatch() != 4 {
		t.Errorf("MaxBatch() = %d, want 4", p.MaxBatch())
	}
	if p.Name() != "wfq(4,100us)" {
		t.Errorf("Name() = %q", p.Name())
	}
}

// TestWFQDecidePicksRoundRobin checks the fair pick directly: with a
// bulk clump ahead of two interactive requests, each queued tenant gets
// a slot per round instead of the clump taking the whole FIFO prefix.
func TestWFQDecidePicksRoundRobin(t *testing.T) {
	p, err := NewWFQBatch(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	queue := []Request{
		{ID: 0, ArrivalUS: 0, SeqLen: 8, Tenant: "bulk-0"},
		{ID: 1, ArrivalUS: 0, SeqLen: 8, Tenant: "bulk-0"},
		{ID: 2, ArrivalUS: 0, SeqLen: 8, Tenant: "bulk-0"},
		{ID: 3, ArrivalUS: 0, SeqLen: 8, Tenant: "bulk-0"},
		{ID: 4, ArrivalUS: 5, SeqLen: 4, Tenant: "chat-0"},
		{ID: 5, ArrivalUS: 6, SeqLen: 4, Tenant: "chat-1"},
	}
	d := p.Decide(queue, 10, 2000)
	if !d.Dispatch {
		t.Fatalf("full queue did not dispatch: %+v", d)
	}
	// Round-robin over first-occurrence tenant order [bulk-0, chat-0,
	// chat-1]: round 0 takes indices 0, 4, 5; round 1 takes 1.
	want := []int{0, 4, 5, 1}
	if len(d.Pick) != len(want) {
		t.Fatalf("pick = %v, want %v", d.Pick, want)
	}
	for i, idx := range want {
		if d.Pick[i] != idx {
			t.Fatalf("pick = %v, want %v", d.Pick, want)
		}
	}
}

// TestWFQGatesLikeDynamic: under-full queues wait for the oldest
// request's timeout, dispatch at the deadline, and always dispatch at
// trace drain.
func TestWFQGatesLikeDynamic(t *testing.T) {
	p, err := NewWFQBatch(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	queue := []Request{{ID: 0, ArrivalUS: 50, SeqLen: 8, Tenant: "a"}}
	if d := p.Decide(queue, 60, 500); d.Dispatch || d.WaitUntilUS != 150 {
		t.Errorf("before deadline: %+v, want wait until 150", d)
	}
	if d := p.Decide(queue, 150, 500); !d.Dispatch || len(d.Pick) != 1 {
		t.Errorf("at deadline: %+v, want dispatch of 1", d)
	}
	if d := p.Decide(queue, 60, math.Inf(1)); !d.Dispatch {
		t.Errorf("at drain: %+v, want dispatch", d)
	}
}

// TestWFQUntenantedEqualsDynamic is the strict-generalization witness:
// on a single-tenant trace the fair pick degenerates to the FIFO
// prefix, so a wfq run serializes byte-identically to the dynamic
// policy apart from the policy label.
func TestWFQUntenantedEqualsDynamic(t *testing.T) {
	tr, err := PoissonTrace(dataset.IWSLT15(1), 2000, 3000, 21)
	if err != nil {
		t.Fatal(err)
	}
	wfq, err := NewWFQBatch(8, 500)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewDynamicBatch(8, 500)
	if err != nil {
		t.Fatal(err)
	}
	a := simulate(t, tr, wfq)
	b := simulate(t, tr, dyn)
	sa, sb := a.Summary(), b.Summary()
	sa.Policy = sb.Policy // the label is the one allowed difference
	ba, err := sa.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := sb.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Errorf("wfq on an untenanted trace diverged from dynamic:\n%s\nvs\n%s", ba, bb)
	}
	if sa.PerTenant != nil {
		t.Errorf("untenanted run emitted per-tenant stats: %+v", sa.PerTenant)
	}
}

// TestWFQUnstarvesInteractive is the policy-level starvation story:
// bulk clumps ahead of sparse interactive requests under full-batch
// FIFO gating force the interactive tenant to wait out whole clumps;
// the fair pick gives it a slot in the next batch.
func TestWFQUnstarvesInteractive(t *testing.T) {
	// Every 1000µs a bulk tenant dumps 8 requests; 5µs later one
	// interactive request arrives. fixed(8) serves each clump as one
	// batch, so the interactive request always waits for the next full
	// batch; wfq(8) folds it into the very next dispatch.
	var (
		arrivals []float64
		sls      []int
		tenants  []string
	)
	for i := 0; i < 50; i++ {
		base := float64(i) * 1000
		for k := 0; k < 8; k++ {
			arrivals = append(arrivals, base)
			sls = append(sls, 8)
			tenants = append(tenants, "bulk-0")
		}
		arrivals = append(arrivals, base+5)
		sls = append(sls, 4)
		tenants = append(tenants, "chat-0")
	}
	tr := tenantTrace(t, arrivals, sls, tenants)

	fixed, err := NewFixedBatch(8)
	if err != nil {
		t.Fatal(err)
	}
	wfq, err := NewWFQBatch(8, 500)
	if err != nil {
		t.Fatal(err)
	}
	sFIFO := simulate(t, tr, fixed).Summary()
	sWFQ := simulate(t, tr, wfq).Summary()

	chat := func(s Summary) TenantStats {
		for _, ts := range s.PerTenant {
			if ts.Tenant == "chat-0" {
				return ts
			}
		}
		t.Fatalf("no chat-0 roll-up in %+v", s.PerTenant)
		return TenantStats{}
	}
	if got := chat(sWFQ).P99LatencyUS; got >= chat(sFIFO).P99LatencyUS {
		t.Errorf("wfq chat p99 %v not better than FIFO %v", got, chat(sFIFO).P99LatencyUS)
	}
	// Conservation: every tenant's requests are all accounted for.
	var total int
	for _, ts := range sWFQ.PerTenant {
		if ts.Requests != ts.Served+ts.Rejected {
			t.Errorf("tenant %s: %d != %d served + %d rejected", ts.Tenant, ts.Requests, ts.Served, ts.Rejected)
		}
		total += ts.Requests
	}
	if total != len(tr.Requests) {
		t.Errorf("per-tenant requests sum %d, want %d", total, len(tr.Requests))
	}
}
