package serving

import (
	"sort"

	"seqpoint/internal/stats"
)

// TenantStats is one tenant's share of a serving or fleet run: its
// admission outcome and latency/TTFT tail. Summaries carry a sorted
// per-tenant slice only when the trace was tenanted, so single-tenant
// runs serialize byte-identically to the pre-tenant format.
type TenantStats struct {
	// Tenant is the tenant label.
	Tenant string `json:"tenant"`
	// Requests, Served and Rejected partition the tenant's arrivals
	// (Requests = Served + Rejected — the per-tenant conservation the
	// fleet fuzzer asserts).
	Requests int `json:"requests"`
	Served   int `json:"served"`
	Rejected int `json:"rejected"`
	// DropRatePct is Rejected over Requests in percent.
	DropRatePct float64 `json:"drop_rate_pct"`
	// MeanLatencyUS and the percentiles digest the tenant's served
	// end-to-end latencies (nearest-rank, like the aggregate summary).
	MeanLatencyUS float64 `json:"mean_latency_us"`
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P95LatencyUS  float64 `json:"p95_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
	// TTFT roll-ups, only emitted under the KV model where the
	// prefill/decode phases are separable.
	MeanTTFTUS float64 `json:"mean_ttft_us,omitempty"`
	P99TTFTUS  float64 `json:"p99_ttft_us,omitempty"`
}

// perTenantStats rolls served metrics and rejections up by tenant,
// sorted by tenant label. It returns nil when no request carries a
// tenant — the strict-generalization switch that keeps single-tenant
// summaries byte-identical. kvOn gates the TTFT digests.
func perTenantStats(metrics []RequestMetric, rejections []Rejection, kvOn bool) []TenantStats {
	var (
		idx   map[string]int
		order []string
	)
	slot := func(tenant string) int {
		if idx == nil {
			idx = make(map[string]int)
		}
		i, ok := idx[tenant]
		if !ok {
			i = len(order)
			idx[tenant] = i
			order = append(order, tenant)
		}
		return i
	}
	type acc struct {
		served, rejected int
		lats, ttfts      []float64
	}
	var accs []acc
	grow := func(i int) *acc {
		for len(accs) <= i {
			accs = append(accs, acc{})
		}
		return &accs[i]
	}
	for _, m := range metrics {
		if m.Tenant == "" {
			continue
		}
		a := grow(slot(m.Tenant))
		a.served++
		a.lats = append(a.lats, m.LatencyUS())
		if kvOn {
			a.ttfts = append(a.ttfts, m.TTFTUS())
		}
	}
	for _, rej := range rejections {
		if rej.Tenant == "" {
			continue
		}
		grow(slot(rej.Tenant)).rejected++
	}
	if len(order) == 0 {
		return nil
	}
	sort.Strings(order)
	out := make([]TenantStats, 0, len(order))
	for _, tenant := range order {
		a := accs[idx[tenant]]
		ts := TenantStats{
			Tenant:   tenant,
			Requests: a.served + a.rejected,
			Served:   a.served,
			Rejected: a.rejected,
		}
		if ts.Requests > 0 {
			ts.DropRatePct = float64(ts.Rejected) / float64(ts.Requests) * 100
		}
		if len(a.lats) > 0 {
			ts.MeanLatencyUS = stats.Sum(a.lats) / float64(len(a.lats))
			if ps, err := stats.PercentilesInPlace(a.lats, 50, 95, 99); err == nil {
				ts.P50LatencyUS, ts.P95LatencyUS, ts.P99LatencyUS = ps[0], ps[1], ps[2]
			}
		}
		if kvOn && len(a.ttfts) > 0 {
			ts.MeanTTFTUS = stats.Sum(a.ttfts) / float64(len(a.ttfts))
			if ps, err := stats.PercentilesInPlace(a.ttfts, 99); err == nil {
				ts.P99TTFTUS = ps[0]
			}
		}
		out = append(out, ts)
	}
	return out
}
