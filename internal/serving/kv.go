package serving

import (
	"fmt"
	"math"

	"seqpoint/internal/models"
)

// Memory-aware serving: the KV-cache capacity model. With KV enabled
// (Spec.KV / FleetSpec.KV non-nil) every request is a prefill over its
// SeqLen input tokens followed by DecodeSteps autoregressive steps,
// and while it executes the replica holds (SeqLen + steps) tokens of
// cache per request at KVConfig.BytesPerToken each, against a
// per-replica capacity ceiling. Batches are priced in two phases
// through the same ProfileSource seam: the prefill at the batch's
// padded SL, plus max-steps decode steps each priced at SL 1
// (pad-to-max decode — the batch completes together). TTFT is the
// prefill's completion: the instant the first output token exists.
//
// When a policy's pick would overflow the ceiling the replica
// preempts, policy-selectably:
//
//   - PreemptEvict (default): the maximal fitting prefix launches; the
//     displaced requests are evicted back to the queue front to be
//     re-batched (recomputed) later.
//   - PreemptBlock: the full pick is served as consecutive
//     capacity-bounded waves within one busy period — later waves
//     block on the cache the earlier ones hold.
//
// Both surface as preemption counts and, under load, as exactly the
// OOM-driven tail inflation the compute-only model cannot express.
// With KV disabled none of this code runs: pricing, the ProfileSource
// call sequence and every output byte match the KV-less simulator.

// Preemption policy names accepted by KVConfig.Preempt.
const (
	// PreemptEvict launches the maximal fitting prefix of a batch and
	// returns the displaced requests to the queue front.
	PreemptEvict = "evict"
	// PreemptBlock serves an over-capacity batch as consecutive
	// capacity-bounded waves within one busy period.
	PreemptBlock = "block"
)

// RejectReasonKVCapacity marks a request whose own cache footprint
// exceeds a replica's capacity: it can never be served, so the fleet
// rejects it at admission rather than wedging a queue.
const RejectReasonKVCapacity = "kv_capacity"

// Disagg stage selectors (internal): which phase of a request a fleet
// stage executes. The zero value is the aggregated both-phase server.
const (
	phaseBoth = iota
	phasePrefill
	phaseDecode
)

// KVConfig enables the per-replica KV-cache capacity model.
type KVConfig struct {
	// CapacityBytes is the per-replica cache ceiling in bytes.
	CapacityBytes float64
	// DecodeSteps is the decode length applied to requests that do not
	// carry their own (Request.DecodeSteps == 0). 0 means requests are
	// prefill-only unless they say otherwise.
	DecodeSteps int
	// BytesPerToken overrides the per-token cache footprint; 0 derives
	// it from the model (models.KVBytesPerToken).
	BytesPerToken float64
	// Preempt selects the over-capacity behavior: PreemptEvict
	// (default) or PreemptBlock.
	Preempt string

	// phase restricts the server to one request phase; only the
	// disaggregated topology's internal stages set it.
	phase int
}

// Validate reports whether the configuration is usable.
func (k KVConfig) Validate() error {
	switch {
	case math.IsNaN(k.CapacityBytes) || math.IsInf(k.CapacityBytes, 0) || k.CapacityBytes <= 0:
		return fmt.Errorf("serving: KV capacity must be a positive finite byte count, got %v", k.CapacityBytes)
	case k.DecodeSteps < 0:
		return fmt.Errorf("serving: KV decode steps must be non-negative, got %d", k.DecodeSteps)
	case math.IsNaN(k.BytesPerToken) || math.IsInf(k.BytesPerToken, 0) || k.BytesPerToken < 0:
		return fmt.Errorf("serving: KV bytes-per-token must be a non-negative finite byte count, got %v", k.BytesPerToken)
	}
	switch k.Preempt {
	case "", PreemptEvict, PreemptBlock:
		return nil
	default:
		return fmt.Errorf("serving: unknown KV preemption policy %q (want %s or %s)",
			k.Preempt, PreemptEvict, PreemptBlock)
	}
}

// KVRunStats is the cache model's roll-up of one run.
type KVRunStats struct {
	// BytesPerToken and CapacityBytes echo the resolved configuration.
	BytesPerToken float64 `json:"bytes_per_token"`
	CapacityBytes float64 `json:"capacity_bytes"`
	// PeakBytes is the largest cache footprint any replica held.
	PeakBytes float64 `json:"peak_bytes"`
	// Preemptions counts requests displaced by the capacity ceiling
	// (evicted to the queue, or blocked into a later wave).
	Preemptions int `json:"preemptions"`
}

// kvState is the resolved, immutable KV configuration a run executes
// under.
type kvState struct {
	capacity float64
	bpt      float64
	steps    int // default decode steps
	preempt  string
	phase    int
}

// newKVState resolves cfg against the served model. cfg must already
// be validated.
func newKVState(cfg *KVConfig, m models.Model) *kvState {
	bpt := cfg.BytesPerToken
	if bpt == 0 {
		bpt = models.KVBytesPerToken(m)
	}
	preempt := cfg.Preempt
	if preempt == "" {
		preempt = PreemptEvict
	}
	return &kvState{
		capacity: cfg.CapacityBytes,
		bpt:      bpt,
		steps:    cfg.DecodeSteps,
		preempt:  preempt,
		phase:    cfg.phase,
	}
}

// decodeSteps is the request's effective decode length: its own, or
// the configured default. A prefill-only stage decodes nothing.
func (k *kvState) decodeSteps(r Request) int {
	if k.phase == phasePrefill {
		return 0
	}
	if r.DecodeSteps > 0 {
		return r.DecodeSteps
	}
	return k.steps
}

// peakBytes is the cache footprint the request holds at its largest:
// its full context (input plus generated tokens) for decoding
// servers, the input alone for a prefill-only stage.
func (k *kvState) peakBytes(r Request) float64 {
	tokens := r.SeqLen
	if k.phase != phasePrefill {
		tokens += k.decodeSteps(r)
	}
	return float64(tokens) * k.bpt
}

// prependRequests returns queue with reqs inserted at the front,
// preserving both orders — how evicted requests rejoin the line ahead
// of later arrivals, so recomputation cannot starve them. reqs must
// not alias queue's backing array (it is an in-flight batch buffer at
// every call site).
func prependRequests(queue, reqs []Request) []Request {
	n, old := len(reqs), len(queue)
	queue = append(queue, reqs...)
	copy(queue[n:], queue[:old])
	copy(queue[:n], reqs)
	return queue
}

// kvReqTime is one launched request's timing within its busy period,
// as offsets from the launch instant: batch-start, first-token
// (prefill completion) and completion, plus the wave it ran in.
type kvReqTime struct {
	startOff, firstOff, doneOff float64
	batch, paddedSL             int
}

// kvPlan is the priced execution plan of one policy pick under the
// capacity ceiling.
type kvPlan struct {
	// keep is the number of batch-prefix requests launched now; under
	// PreemptEvict the remainder is displaced back to the queue.
	keep int
	// waves is the number of priced sub-batches the launch runs
	// (always 1 without preemption).
	waves int
	// totalLat is the busy period: the summed wave latencies.
	totalLat float64
	// peak is the largest single-wave cache footprint; keptKV the
	// summed footprint of the launched requests.
	peak, keptKV float64
	// preempts counts the requests displaced past the first wave (or
	// out of the launch entirely, under eviction).
	preempts int
}

// plan partitions batch (in queue order) into capacity-fitting waves
// and prices each through the table: prefill at the wave's padded SL
// plus pad-to-max decode steps at the wave's size. times is a reused
// scratch slice; the returned slice holds one kvReqTime per kept
// request. Requests individually over capacity are the caller's to
// screen out; hitting one here is an error.
func (k *kvState) plan(prices *priceTable, clusterIdx int, batch []Request, times []kvReqTime) (kvPlan, []kvReqTime, error) {
	p := kvPlan{keep: len(batch)}
	times = times[:0]
	var off float64 // busy-period offset of the current wave
	wStart := 0
	var kvSum float64

	flush := func(end int) error {
		if end == wStart {
			return nil
		}
		wave := batch[wStart:end]
		paddedSL, maxSteps := 0, 0
		for _, q := range wave {
			if q.SeqLen > paddedSL {
				paddedSL = q.SeqLen
			}
			if s := k.decodeSteps(q); s > maxSteps {
				maxSteps = s
			}
		}
		var prefill float64
		if k.phase != phaseDecode {
			var err error
			if prefill, err = prices.latency(clusterIdx, len(wave), paddedSL); err != nil {
				return err
			}
		}
		waveLat := prefill
		if maxSteps > 0 {
			step, err := prices.decodeLatency(clusterIdx, len(wave))
			if err != nil {
				return err
			}
			waveLat += float64(maxSteps) * step
		}
		for range wave {
			times = append(times, kvReqTime{
				startOff: off,
				firstOff: off + prefill,
				doneOff:  off + waveLat,
				batch:    len(wave),
				paddedSL: paddedSL,
			})
		}
		off += waveLat
		p.waves++
		p.keptKV += kvSum
		if kvSum > p.peak {
			p.peak = kvSum
		}
		return nil
	}

	for i := 0; i < len(batch); i++ {
		need := k.peakBytes(batch[i])
		if need > k.capacity {
			return p, times, fmt.Errorf("serving: request %d needs %v KV bytes, above the %v-byte replica capacity",
				batch[i].ID, need, k.capacity)
		}
		if kvSum+need > k.capacity {
			if k.preempt == PreemptEvict {
				p.keep = i
				break
			}
			if err := flush(i); err != nil {
				return p, times, err
			}
			wStart, kvSum = i, 0
		}
		kvSum += need
	}
	if err := flush(p.keep); err != nil {
		return p, times, err
	}
	// Every request past the first wave was displaced by the ceiling:
	// evicted back to the queue, or blocked behind earlier waves.
	if p.waves > 0 {
		firstWave := times[0].batch
		p.preempts = len(batch) - firstWave
	}
	p.totalLat = off
	return p, times, nil
}
