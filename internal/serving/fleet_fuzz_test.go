package serving

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
)

// FuzzFleetInvariants drives randomized fleets — arbitrary seeds,
// rates, replica counts, queue bounds, routers, policies, and
// autoscaler settings — through the structural invariants every run
// must satisfy:
//
//   - conservation: served + rejected == arrived, and the served and
//     rejected ID sets partition the trace;
//   - causality: every served request has arrival <= start <= done,
//     so waits and latencies are non-negative;
//   - attribution: per-replica served/batch counts sum to the fleet
//     totals, and rejections only occur under a bounded queue;
//   - memory (kvMode > 0): no replica's cache peak exceeds the
//     capacity ceiling, first-token instants sit inside each request's
//     service window, and preemption counts attribute to replicas;
//   - tenancy (tenantMode > 0): every served metric and rejection
//     carries its trace request's tenant, the per-tenant roll-ups
//     conserve arrivals (requests = served + rejected, summing to the
//     fleet totals), and — for tenant-agnostic policies — the
//     untenanted shadow of the trace reproduces the summary byte-for-
//     byte outside the per-tenant block;
//   - generalization: a 1-replica round-robin unbounded fleet matches
//     the single-queue simulator byte-for-byte, KV model included.
func FuzzFleetInvariants(f *testing.F) {
	f.Add(int64(1), 200.0, uint8(40), uint8(1), uint8(0), uint8(0), uint8(0), false, uint8(0), uint8(0))
	f.Add(int64(7), 900.0, uint8(120), uint8(3), uint8(4), uint8(1), uint8(1), false, uint8(0), uint8(3))
	f.Add(int64(42), 5000.0, uint8(200), uint8(5), uint8(2), uint8(2), uint8(2), true, uint8(0), uint8(2))
	f.Add(int64(-3), 50.0, uint8(10), uint8(2), uint8(1), uint8(3), uint8(1), true, uint8(0), uint8(0))
	f.Add(int64(99), 1e6, uint8(255), uint8(8), uint8(8), uint8(2), uint8(0), false, uint8(0), uint8(7))
	f.Add(int64(11), 800.0, uint8(96), uint8(4), uint8(0), uint8(4), uint8(1), false, uint8(5), uint8(2))
	f.Add(int64(13), 3000.0, uint8(180), uint8(6), uint8(3), uint8(1), uint8(3), false, uint8(2), uint8(3))

	f.Fuzz(func(t *testing.T, seed int64, rate float64, n, replicas, queueCap, routing, policyKind uint8, autoscale bool, kvMode, tenantMode uint8) {
		if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) || rate > 1e8 {
			t.Skip()
		}
		requests := int(n)%256 + 1
		nReplicas := int(replicas)%8 + 1
		cap := int(queueCap) % 16 // 0 = unbounded

		corpus, err := dataset.Synthetic("fuzz", fuzzLengths(seed), 1000)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := PoissonTrace(corpus, requests, rate, seed)
		if err != nil || trace.Validate() != nil {
			t.Skip() // degenerate rates can overflow arrivals
		}
		// tenantMode > 0 stamps 1-3 deterministic tenant labels across
		// the trace, cycling by arrival index with a mode-dependent
		// offset so tenant runs vary without extra randomness.
		nTenants := int(tenantMode) % 4
		if nTenants > 0 {
			for i := range trace.Requests {
				trace.Requests[i].Tenant = fmt.Sprintf("t%d", (i+int(tenantMode))%nTenants)
			}
		}

		var policy Policy
		switch policyKind % 4 {
		case 0:
			policy, err = NewFixedBatch(int(policyKind)%7 + 1)
		case 1:
			policy, err = NewDynamicBatch(int(policyKind)%5+1, float64(int(policyKind))*250)
		case 2:
			policy, err = NewLengthAware(int(policyKind)%6 + 1)
		default:
			policy, err = NewWFQBatch(int(policyKind)%5+1, float64(int(policyKind))*125)
		}
		if err != nil {
			t.Fatal(err)
		}
		// kvMode > 0 enables the capacity model. The per-token footprint
		// is overridden to 1000B so peaks are hand-computable; the
		// tightest capacity (100KB) still exceeds the largest single
		// request (at most (61+16)×1000B), so admission never rejects on
		// size and every run exercises the batching/preemption path.
		var kv *KVConfig
		if kvMode > 0 {
			kv = &KVConfig{
				CapacityBytes: float64(int(kvMode)%4+1) * 100_000,
				DecodeSteps:   int(kvMode) % 17,
				BytesPerToken: 1000,
				Preempt:       []string{PreemptEvict, PreemptBlock}[int(kvMode)%2],
			}
		}
		routerNames := []string{RoutingRoundRobin, RoutingLeastOutstanding, RoutingJSQ, RoutingPowerOfTwo}
		if kv != nil {
			routerNames = append(routerNames, RoutingKV)
		}
		router, err := ParseRouting(routerNames[int(routing)%len(routerNames)], seed)
		if err != nil {
			t.Fatal(err)
		}
		spec := FleetSpec{
			Model:    models.NewGNMT(),
			Trace:    trace,
			Policy:   policy,
			Router:   router,
			Replicas: nReplicas,
			QueueCap: cap,
			Profiles: &stubSource{},
			KV:       kv,
		}
		if autoscale {
			spec.Autoscale = &AutoscaleConfig{
				Min: 1, Max: nReplicas, UpDepth: float64(int(queueCap)%4 + 1),
				DownDepth: 0.5, CooldownUS: float64(int(routing)) * 100,
			}
			spec.Replicas = 1
		}
		res, err := SimulateFleet(spec, gpusim.VegaFE())
		if err != nil {
			t.Fatalf("SimulateFleet: %v", err)
		}

		// Conservation: served + rejected partition the trace.
		if got := len(res.Requests) + len(res.Rejections); got != requests {
			t.Fatalf("served %d + rejected %d != arrived %d", len(res.Requests), len(res.Rejections), requests)
		}
		seen := make(map[int]bool, requests)
		for _, m := range res.Requests {
			if m.ID < 0 || m.ID >= requests || seen[m.ID] {
				t.Fatalf("served ID %d out of range or duplicated", m.ID)
			}
			seen[m.ID] = true
		}
		for _, rej := range res.Rejections {
			if rej.ID < 0 || rej.ID >= requests || seen[rej.ID] {
				t.Fatalf("rejected ID %d out of range or duplicated", rej.ID)
			}
			seen[rej.ID] = true
			if rej.Reason != RejectReasonQueueFull && rej.Reason != RejectReasonKVCapacity {
				t.Fatalf("rejection reason %q, want %q or %q", rej.Reason, RejectReasonQueueFull, RejectReasonKVCapacity)
			}
		}
		if cap == 0 && len(res.Rejections) > 0 {
			// The KV capacities above always admit single requests, so an
			// unbounded queue still implies zero rejections.
			t.Fatalf("%d rejections under an unbounded queue", len(res.Rejections))
		}

		// Causality: arrival <= start <= done for every served request,
		// and the makespan is the last completion.
		var lastDone float64
		for _, m := range res.Requests {
			if m.WaitUS() < 0 {
				t.Fatalf("request %d has negative wait %v", m.ID, m.WaitUS())
			}
			if m.DoneUS < m.StartUS {
				t.Fatalf("request %d done %v before start %v", m.ID, m.DoneUS, m.StartUS)
			}
			if m.Replica < 0 || m.Replica >= res.Replicas {
				t.Fatalf("request %d served by out-of-range replica %d", m.ID, m.Replica)
			}
			if m.DoneUS > lastDone {
				lastDone = m.DoneUS
			}
		}
		if lastDone != res.MakespanUS {
			t.Fatalf("makespan %v != last completion %v", res.MakespanUS, lastDone)
		}

		// Attribution: per-replica counts sum to the fleet totals.
		var served, batches int
		var busy float64
		for _, rs := range res.ReplicaStats {
			served += rs.Served
			batches += rs.Batches
			busy += rs.BusyUS
		}
		if served != len(res.Requests) {
			t.Fatalf("replica served sum %d != fleet served %d", served, len(res.Requests))
		}
		if batches != res.Batches {
			t.Fatalf("replica batch sum %d != fleet batches %d", batches, res.Batches)
		}
		if diff := math.Abs(busy - res.BusyUS); diff > 1e-6*(1+res.BusyUS) {
			t.Fatalf("replica busy sum %v != fleet busy %v", busy, res.BusyUS)
		}
		if res.ReplicaSeconds < 0 {
			t.Fatalf("negative replica-seconds %v", res.ReplicaSeconds)
		}

		// Tenancy: every outcome carries its trace request's tenant, and
		// the per-tenant roll-ups conserve arrivals exactly.
		tenantOf := make(map[int]string, requests)
		arrivedBy := make(map[string]int)
		for _, r := range trace.Requests {
			tenantOf[r.ID] = r.Tenant
			arrivedBy[r.Tenant]++
		}
		for _, m := range res.Requests {
			if m.Tenant != tenantOf[m.ID] {
				t.Fatalf("request %d served as tenant %q, trace says %q", m.ID, m.Tenant, tenantOf[m.ID])
			}
		}
		for _, rej := range res.Rejections {
			if rej.Tenant != tenantOf[rej.ID] {
				t.Fatalf("request %d rejected as tenant %q, trace says %q", rej.ID, rej.Tenant, tenantOf[rej.ID])
			}
		}
		sum := res.Summary()
		if nTenants == 0 {
			if sum.PerTenant != nil {
				t.Fatalf("untenanted run produced %d per-tenant rows", len(sum.PerTenant))
			}
		} else {
			if len(sum.PerTenant) != len(arrivedBy) {
				t.Fatalf("summary has %d per-tenant rows, trace has %d tenants", len(sum.PerTenant), len(arrivedBy))
			}
			var total int
			for _, ts := range sum.PerTenant {
				if ts.Requests != ts.Served+ts.Rejected {
					t.Fatalf("tenant %q: %d requests != %d served + %d rejected", ts.Tenant, ts.Requests, ts.Served, ts.Rejected)
				}
				if ts.Requests != arrivedBy[ts.Tenant] {
					t.Fatalf("tenant %q: summary saw %d arrivals, trace sent %d", ts.Tenant, ts.Requests, arrivedBy[ts.Tenant])
				}
				total += ts.Requests
			}
			if total != requests {
				t.Fatalf("per-tenant arrivals sum to %d, fleet saw %d", total, requests)
			}
		}

		// Memory: the cache model never overdraws its ceiling, and
		// first-token instants are inside each service window.
		if kv != nil {
			if res.KV == nil {
				t.Fatal("KV-enabled run produced no KV stats")
			}
			if res.KV.PeakBytes > kv.CapacityBytes {
				t.Fatalf("fleet cache peak %v above the %v-byte capacity", res.KV.PeakBytes, kv.CapacityBytes)
			}
			var preempts int
			for _, rs := range res.ReplicaStats {
				if rs.KVPeakBytes > kv.CapacityBytes {
					t.Fatalf("replica %d cache peak %v above the %v-byte capacity", rs.Replica, rs.KVPeakBytes, kv.CapacityBytes)
				}
				preempts += rs.Preemptions
			}
			if preempts != res.KV.Preemptions {
				t.Fatalf("replica preemption sum %d != fleet preemptions %d", preempts, res.KV.Preemptions)
			}
			for _, m := range res.Requests {
				if m.FirstUS < m.StartUS || m.FirstUS > m.DoneUS {
					t.Fatalf("request %d first-token %v outside service window [%v, %v]", m.ID, m.FirstUS, m.StartUS, m.DoneUS)
				}
			}
		} else if res.KV != nil {
			t.Fatal("KV-disabled run produced KV stats")
		}

		// Parallel advancement (Parallelism > 1) must reproduce the
		// serial loop byte-for-byte on non-autoscaled fleets — same
		// summary and same per-request metrics. A fresh router is built
		// for the re-run because routers carry deterministic state (the
		// round-robin cursor, po2's seeded RNG).
		if spec.Autoscale == nil {
			prouter, err := ParseRouting(routerNames[int(routing)%len(routerNames)], seed)
			if err != nil {
				t.Fatal(err)
			}
			pspec := spec
			pspec.Router = prouter
			pspec.Parallelism = int(n)%3 + 2
			pres, err := SimulateFleet(pspec, gpusim.VegaFE())
			if err != nil {
				t.Fatalf("parallel SimulateFleet: %v", err)
			}
			want, _ := res.Summary().Serialize()
			got, _ := pres.Summary().Serialize()
			if !bytes.Equal(got, want) {
				t.Fatalf("parallelism %d diverged from serial:\n%s\nvs\n%s", pspec.Parallelism, got, want)
			}
			if !reflect.DeepEqual(res.Requests, pres.Requests) {
				t.Fatalf("parallelism %d produced different per-request metrics", pspec.Parallelism)
			}
			if !reflect.DeepEqual(res.Rejections, pres.Rejections) {
				t.Fatalf("parallelism %d produced different rejections", pspec.Parallelism)
			}
		}

		// Tenant neutrality: under every tenant-agnostic policy (all but
		// wfq, whose fair pick reorders by design), labels must only add
		// the per-tenant roll-up — the untenanted shadow of the trace
		// reproduces the rest of the summary byte-for-byte.
		if nTenants > 0 && policyKind%4 != 3 {
			urouter, err := ParseRouting(routerNames[int(routing)%len(routerNames)], seed)
			if err != nil {
				t.Fatal(err)
			}
			uspec := spec
			uspec.Trace = trace.Untenanted()
			uspec.Router = urouter
			ures, err := SimulateFleet(uspec, gpusim.VegaFE())
			if err != nil {
				t.Fatalf("untenanted SimulateFleet: %v", err)
			}
			tsum := sum
			tsum.PerTenant = nil
			want, _ := ures.Summary().Serialize()
			got, _ := tsum.Serialize()
			if !bytes.Equal(got, want) {
				t.Fatalf("tenant labels changed the summary beyond the per-tenant block:\n%s\nvs\n%s", got, want)
			}
		}

		// Generalization: the 1-replica unbounded round-robin fleet is
		// the single-queue simulator.
		if nReplicas == 1 && cap == 0 && spec.Autoscale == nil && router.Name() == RoutingRoundRobin {
			single, err := Simulate(Spec{
				Model: spec.Model, Trace: trace, Policy: policy, Profiles: &stubSource{}, KV: kv,
			}, gpusim.VegaFE())
			if err != nil {
				t.Fatalf("Simulate: %v", err)
			}
			asServing, err := res.AsServing()
			if err != nil {
				t.Fatal(err)
			}
			want, _ := single.Summary().Serialize()
			got, _ := asServing.Summary().Serialize()
			if !bytes.Equal(got, want) {
				t.Fatalf("1-replica fleet diverged from Simulate:\n%s\nvs\n%s", got, want)
			}
		}
	})
}

// fuzzLengths derives a small deterministic SL pool from the fuzz seed
// so traces vary without unseeded randomness.
func fuzzLengths(seed int64) []int {
	if seed < 0 {
		seed = -seed
	}
	lengths := make([]int, 32)
	for i := range lengths {
		lengths[i] = 1 + int((seed+int64(i)*7)%61)
	}
	return lengths
}
