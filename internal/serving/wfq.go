package serving

import (
	"fmt"
	"math"
	"sync"
)

// wfqBatch is tenant-aware weighted-fair batching: it gates like the
// dynamic policy (launch on a full batch, on the oldest request's
// timeout, or at trace drain), but fills the batch round-robin across
// tenants — one request per tenant per round, FIFO within each tenant
// — instead of taking the FIFO prefix. When a bulk tenant dumps a
// clump of requests ahead of an interactive tenant's single request,
// the FIFO prefix serves the whole clump first; the fair pick gives
// every queued tenant a slot each round, which is what un-starves
// interactive tenants (see experiments.TenantSweep for the measured
// story).
//
// On an untenanted queue every request shares the one empty tenant,
// so the pick degenerates to the FIFO prefix and the policy behaves
// exactly like dynamic batching — the strict-generalization property
// the fuzzer holds every policy to.
type wfqBatch struct {
	size      int
	timeoutUS float64
}

// NewWFQBatch returns the tenant-aware weighted-fair batching policy.
func NewWFQBatch(size int, timeoutUS float64) (Policy, error) {
	if size <= 0 {
		return nil, fmt.Errorf("serving: wfq batch size must be positive, got %d", size)
	}
	if timeoutUS < 0 || math.IsNaN(timeoutUS) || math.IsInf(timeoutUS, 0) {
		return nil, fmt.Errorf("serving: wfq batch timeout must be a finite non-negative duration, got %v", timeoutUS)
	}
	return wfqBatch{size: size, timeoutUS: timeoutUS}, nil
}

func (p wfqBatch) Name() string  { return fmt.Sprintf("wfq(%d,%.4gus)", p.size, p.timeoutUS) }
func (p wfqBatch) MaxBatch() int { return p.size }

// wfqScratch is the pooled pick-assembly state, so a dispatch costs no
// steady-state allocation while the policy value itself stays
// stateless (Decide runs from concurrently advancing replicas).
type wfqScratch struct {
	byTenant map[string][]int // queue indices per tenant, FIFO order
	order    []string         // tenants by first occurrence in the queue
}

var wfqScratchPool = sync.Pool{New: func() any {
	return &wfqScratch{byTenant: make(map[string][]int)}
}}

// wfqCandidateWindow bounds how deep into the queue the fair picker
// looks, like the length-aware policy's window: a deep overload
// backlog must not make every dispatch bucket the whole queue.
func (p wfqBatch) candidateWindow() int {
	w := 16 * p.size
	if w < minLengthAwareWindow {
		w = minLengthAwareWindow
	}
	return w
}

func (p wfqBatch) Decide(queue []Request, nowUS, nextArrivalUS float64) Decision {
	drain := math.IsInf(nextArrivalUS, 1)
	if len(queue) < p.size && !drain {
		deadline := queue[0].ArrivalUS + p.timeoutUS
		if nowUS < deadline {
			return Decision{WaitUntilUS: deadline}
		}
	}
	n := p.size
	if len(queue) < n {
		n = len(queue)
	}
	limit := len(queue)
	if w := p.candidateWindow(); limit > w {
		limit = w
	}
	s := wfqScratchPool.Get().(*wfqScratch)
	for _, tenant := range s.order {
		delete(s.byTenant, tenant)
	}
	s.order = s.order[:0]
	for i := 0; i < limit; i++ {
		tenant := queue[i].Tenant
		lst, ok := s.byTenant[tenant]
		if !ok {
			s.order = append(s.order, tenant)
		}
		s.byTenant[tenant] = append(lst, i)
	}
	// Round-robin across tenants in first-occurrence order: round r
	// takes each tenant's (r+1)-th oldest request until the batch is
	// full. takeBatch launches picks in queue order, so only the
	// membership matters — fairness is who gets a slot, not position.
	// The pick is freshly allocated: concurrently advancing replicas
	// may still hold their Decision while this scratch is reused.
	pick := make([]int, 0, n)
	for round := 0; len(pick) < n; round++ {
		took := false
		for _, tenant := range s.order {
			lst := s.byTenant[tenant]
			if round < len(lst) {
				pick = append(pick, lst[round])
				took = true
				if len(pick) == n {
					break
				}
			}
		}
		if !took {
			break
		}
	}
	wfqScratchPool.Put(s)
	return Decision{Dispatch: true, Pick: pick}
}
