package serving

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrBadRoute is the typed cause SimulateFleet wraps when a router
// violates its contract by returning an out-of-range or ineligible
// replica. The fleet used to paper over this by silently re-routing to
// the lowest-ID eligible replica, which hid real router bugs inside
// otherwise-plausible results; now the run stops and says so.
var ErrBadRoute = errors.New("serving: router returned an ineligible replica")

// ReplicaView is the router-visible state of one replica at a routing
// instant: enough to implement the classic load-balancing policies
// without exposing the event loop's internals.
type ReplicaView struct {
	// ID is the replica's index in the fleet.
	ID int
	// Live reports whether the replica is currently active (autoscaled
	// fleets deactivate replicas; requests never route to a dead one).
	Live bool
	// Queued is the number of admitted, not-yet-dispatched requests.
	Queued int
	// InFlight is the size of the batch the replica is executing (0
	// when idle).
	InFlight int
	// HasRoom reports whether the replica's bounded queue can admit one
	// more request (always true on unbounded queues).
	HasRoom bool
	// KVBytes is the replica's cache pressure under the KV model: the
	// summed peak footprint of its queued and in-flight requests.
	// Always 0 with KV disabled.
	KVBytes float64
}

// eligible reports whether a request may be routed to the replica.
func (v ReplicaView) eligible() bool { return v.Live && v.HasRoom }

// Outstanding is the replica's total unfinished work in requests.
func (v ReplicaView) Outstanding() int { return v.Queued + v.InFlight }

// Router picks the replica each arriving request joins. Route is
// called once per admitted arrival, in strict arrival order, with the
// full fleet view; at least one replica is eligible (Live && HasRoom —
// when none is, the fleet rejects the request without consulting the
// router). Route must return an eligible replica's ID. Routers may
// keep deterministic internal state (a rotation cursor, a seeded RNG);
// given the same construction and call sequence they must make the
// same picks, which keeps fleet summaries byte-identical across runs.
type Router interface {
	// Name labels the router in reports ("rr", "jsq", "po2(seed=7)").
	Name() string
	// Route returns the chosen replica's ID for req.
	Route(req Request, replicas []ReplicaView) int
}

// Routing names accepted by ParseRouting.
const (
	RoutingRoundRobin       = "rr"
	RoutingLeastOutstanding = "least"
	RoutingJSQ              = "jsq"
	RoutingPowerOfTwo       = "po2"
	RoutingKV               = "kv"
)

// ParseRouting builds a router from its CLI/HTTP spelling: "rr",
// "least", "jsq", "po2" or "kv". seed drives po2's sampling only.
func ParseRouting(name string, seed int64) (Router, error) {
	switch name {
	case RoutingRoundRobin:
		return NewRoundRobin(), nil
	case RoutingLeastOutstanding:
		return NewLeastOutstanding(), nil
	case RoutingJSQ:
		return NewJSQ(), nil
	case RoutingPowerOfTwo:
		return NewPowerOfTwo(seed), nil
	case RoutingKV:
		return NewKVRouter(), nil
	default:
		return nil, fmt.Errorf("serving: unknown routing %q (want %s, %s, %s, %s or %s)",
			name, RoutingRoundRobin, RoutingLeastOutstanding, RoutingJSQ, RoutingPowerOfTwo, RoutingKV)
	}
}

// roundRobin cycles through the replicas in ID order, skipping
// ineligible ones. It is oblivious to queue state — the baseline the
// informed policies are measured against.
type roundRobin struct{ next int }

// NewRoundRobin returns the round-robin router.
func NewRoundRobin() Router { return &roundRobin{} }

func (r *roundRobin) Name() string { return RoutingRoundRobin }

func (r *roundRobin) Route(req Request, replicas []ReplicaView) int {
	n := len(replicas)
	for i := 0; i < n; i++ {
		v := replicas[(r.next+i)%n]
		if v.eligible() {
			r.next = (v.ID + 1) % n
			return v.ID
		}
	}
	// The fleet never calls Route with no eligible replica; scanning a
	// full cycle without one is unreachable, and the fleet surfaces it
	// as an ErrBadRoute failure rather than guessing a replica.
	return -1
}

// jsq joins the shortest queue: the eligible replica with the fewest
// queued requests, ties toward the lowest ID.
type jsq struct{}

// NewJSQ returns the join-shortest-queue router.
func NewJSQ() Router { return jsq{} }

func (jsq) Name() string { return RoutingJSQ }

func (jsq) Route(req Request, replicas []ReplicaView) int {
	best := -1
	for _, v := range replicas {
		if v.eligible() && (best < 0 || v.Queued < replicas[best].Queued) {
			best = v.ID
		}
	}
	return best
}

// leastOutstanding picks the eligible replica with the fewest
// unfinished requests (queued + in-flight), ties toward the lowest ID.
// Unlike JSQ it sees the batch a replica is still executing, so it
// avoids piling onto a replica that just dispatched its whole queue.
type leastOutstanding struct{}

// NewLeastOutstanding returns the least-outstanding-requests router.
func NewLeastOutstanding() Router { return leastOutstanding{} }

func (leastOutstanding) Name() string { return RoutingLeastOutstanding }

func (leastOutstanding) Route(req Request, replicas []ReplicaView) int {
	best := -1
	for _, v := range replicas {
		if v.eligible() && (best < 0 || v.Outstanding() < replicas[best].Outstanding()) {
			best = v.ID
		}
	}
	return best
}

// kvRouter picks the eligible replica with the least KV-cache
// pressure (queued plus in-flight footprint), ties toward the lowest
// ID — the routing policy that actually sees the resource the
// memory-bound regime contends on. It needs the fleet's KV model to
// be enabled; FleetSpec.Validate rejects the pairing with KV off,
// where every view reports zero pressure.
type kvRouter struct{}

// NewKVRouter returns the least-KV-pressure router.
func NewKVRouter() Router { return kvRouter{} }

func (kvRouter) Name() string { return RoutingKV }

func (kvRouter) Route(req Request, replicas []ReplicaView) int {
	best := -1
	for _, v := range replicas {
		if v.eligible() && (best < 0 || v.KVBytes < replicas[best].KVBytes) {
			best = v.ID
		}
	}
	return best
}

// powerOfTwo samples two distinct eligible replicas with a seeded RNG
// and joins the shorter queue (ties toward the lower ID): the classic
// "power of two choices" compromise that gets most of JSQ's balance
// with O(1) state inspected per arrival.
type powerOfTwo struct {
	seed int64
	rng  *rand.Rand
	ids  []int // reused eligible-ID scratch; Route is serial by contract
}

// NewPowerOfTwo returns the power-of-two-choices router; seed fixes
// its sampling, so equal seeds replay identical choices.
func NewPowerOfTwo(seed int64) Router {
	return &powerOfTwo{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

func (p *powerOfTwo) Name() string { return fmt.Sprintf("po2(seed=%d)", p.seed) }

func (p *powerOfTwo) Route(req Request, replicas []ReplicaView) int {
	ids := p.ids[:0]
	for _, v := range replicas {
		if v.eligible() {
			ids = append(ids, v.ID)
		}
	}
	p.ids = ids
	switch len(ids) {
	case 0:
		// Unreachable by the Route contract; surfaced by the fleet as
		// ErrBadRoute if it ever happens.
		return -1
	case 1:
		return ids[0]
	}
	ai := p.rng.Intn(len(ids))
	bi := p.rng.Intn(len(ids) - 1)
	if bi >= ai {
		bi++ // sample b from the remaining IDs so the probes are distinct
	}
	a, b := ids[ai], ids[bi]
	if replicas[b].Queued < replicas[a].Queued || (replicas[b].Queued == replicas[a].Queued && b < a) {
		return b
	}
	return a
}
