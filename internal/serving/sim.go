package serving

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/stats"
	"seqpoint/internal/trainer"
)

// Spec describes one online-serving simulation.
type Spec struct {
	// Model is the network being served.
	Model models.Model
	// Trace is the arrival process.
	Trace Trace
	// Policy is the batching policy.
	Policy Policy
	// KV enables the per-replica KV-cache capacity model with
	// prefill/decode-split pricing; nil keeps the compute-only server,
	// byte-identical to the pre-KV simulator.
	KV *KVConfig
	// Profiles overrides the profile source; nil uses the process
	// default (the shared engine when internal/engine is linked).
	Profiles trainer.ProfileSource
}

// Validate reports whether the spec is complete.
func (s Spec) Validate() error {
	switch {
	case s.Model == nil:
		return fmt.Errorf("serving: spec needs a model")
	case s.Policy == nil:
		return fmt.Errorf("serving: spec needs a batching policy")
	case s.Policy.MaxBatch() <= 0:
		return fmt.Errorf("serving: policy %q has non-positive max batch", s.Policy.Name())
	}
	if s.KV != nil {
		if err := s.KV.Validate(); err != nil {
			return err
		}
	}
	return s.Trace.Validate()
}

// RequestMetric is one request's realized timeline.
type RequestMetric struct {
	// ID is the request's trace index.
	ID int `json:"id"`
	// SeqLen is the request's own sequence length.
	SeqLen int `json:"seqlen"`
	// ArrivalUS, StartUS and DoneUS are the arrival, batch-launch and
	// completion times.
	ArrivalUS float64 `json:"arrival_us"`
	StartUS   float64 `json:"start_us"`
	DoneUS    float64 `json:"done_us"`
	// FirstUS is the first-token instant (prefill completion) under the
	// KV model's prefill/decode split; 0 when KV is disabled, where the
	// phases are not separable.
	FirstUS float64 `json:"first_us,omitempty"`
	// BatchSize is the size of the batch that served the request;
	// PaddedSL the batch's padded sequence length (its longest member).
	BatchSize int `json:"batch"`
	PaddedSL  int `json:"padded_sl"`
	// Replica is the fleet replica that served the request; always 0 in
	// single-queue (Simulate) runs.
	Replica int `json:"replica"`
	// Tenant is the request's tenant label; empty (and omitted) on
	// single-tenant traces, keeping their metrics byte-identical to the
	// pre-tenant format.
	Tenant string `json:"tenant,omitempty"`
}

// WaitUS is the request's queueing delay.
func (m RequestMetric) WaitUS() float64 { return m.StartUS - m.ArrivalUS }

// LatencyUS is the request's end-to-end latency (queueing + service).
func (m RequestMetric) LatencyUS() float64 { return m.DoneUS - m.ArrivalUS }

// TTFTUS is the request's time to first token (arrival to prefill
// completion). Only meaningful under the KV model, which separates
// the phases; 0 otherwise.
func (m RequestMetric) TTFTUS() float64 {
	if m.FirstUS == 0 {
		return 0
	}
	return m.FirstUS - m.ArrivalUS
}

// Result is one serving simulation's full outcome.
type Result struct {
	// Config is the hardware configuration served on.
	Config gpusim.Config
	// Policy is the batching policy's name.
	Policy string
	// Requests holds every request's metric in trace (arrival) order.
	Requests []RequestMetric
	// Batches is the number of batches launched.
	Batches int
	// BusyUS is the summed batch execution time.
	BusyUS float64
	// MakespanUS is the completion time of the last batch.
	MakespanUS float64
	// KV is the cache model's roll-up; nil when Spec.KV was nil.
	KV *KVRunStats
}

// policyConsultSlack bounds policy consultations per dispatched batch
// beyond the ones legitimately needed to fill it (every wait-consult
// admits at most one arrival, so a batch of B can take B-1 consults to
// fill). A policy that keeps asking to wait past that is a bug, and
// the bound turns the would-be hang into an error.
const policyConsultSlack = 64

// Simulate runs the serving trace on hw. The event loop is strictly
// sequential; per-batch latencies come from the profile source's eval
// (forward-only) profiles. The trace's unique SLs are prefetched at the
// policy's max batch size up front — one bulk ProfileSource call the
// engine fans out over its worker pool — so full batches hit a warm
// cache; partial-batch sizes are priced on demand. Output is
// byte-identical at any profiling parallelism.
func Simulate(spec Spec, hw gpusim.Config) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	src := spec.Profiles
	if src == nil {
		src = trainer.DefaultProfileSource()
	}
	maxBatch := spec.Policy.MaxBatch()

	// The KV model needs decode-step prices; a nil kv leaves the table
	// and the whole event loop on the pre-KV path, byte for byte.
	var kv *kvState
	if spec.KV != nil {
		kv = newKVState(spec.KV, spec.Model)
		// A request whose own cache exceeds the capacity can never be
		// served; a fleet rejects it at admission, the single-queue
		// server has no admission controller and must refuse the trace.
		for _, r := range spec.Trace.Requests {
			if need := kv.peakBytes(r); need > kv.capacity {
				return nil, fmt.Errorf("serving: request %d needs %v KV bytes, above the %v-byte capacity",
					r.ID, need, kv.capacity)
			}
		}
	}

	// The price table prefetches the trace's unique SLs at the max
	// batch size (every full batch's padded SL is one of the trace's
	// SLs) and prices each dispatch by integer offset; partial-batch
	// sizes fill their slots on first use.
	prices, err := newPriceTable(src, hw, spec.Model, maxBatch,
		[]gpusim.ClusterConfig{gpusim.SingleGPU()}, spec.Trace.UniqueSLs(), kv != nil)
	if err != nil {
		return nil, err
	}

	trace := spec.Trace.Requests
	res := &Result{
		Config:   hw,
		Policy:   spec.Policy.Name(),
		Requests: make([]RequestMetric, len(trace)),
	}
	if kv != nil {
		res.KV = &KVRunStats{BytesPerToken: kv.bpt, CapacityBytes: kv.capacity}
	}

	var (
		clock float64   // server-free time
		next  int       // next trace index to admit
		queue []Request // admitted, unserved requests, oldest first
		done  int       // completed requests

		batchBuf    []Request   // reused takeBatch destination
		pickScratch []int       // reused takeBatch index scratch
		kvTimes     []kvReqTime // reused KV-plan timing scratch
	)
	admit := func() {
		for next < len(trace) && trace[next].ArrivalUS <= clock {
			queue = append(queue, trace[next])
			next++
		}
	}

	for done < len(trace) {
		if len(queue) == 0 {
			// Idle server: jump to the next arrival.
			if clock < trace[next].ArrivalUS {
				clock = trace[next].ArrivalUS
			}
			admit()
		}
		consults := 0
		for {
			nextArrival := math.Inf(1)
			if next < len(trace) {
				nextArrival = trace[next].ArrivalUS
			}
			d := spec.Policy.Decide(queue, clock, nextArrival)
			if d.Dispatch {
				batch, scratch, err := takeBatch(batchBuf[:0], &queue, d.Pick, pickScratch, maxBatch, spec.Policy.Name())
				batchBuf, pickScratch = batch, scratch
				if err != nil {
					return nil, err
				}
				start := clock
				if kv == nil {
					paddedSL := 0
					for _, r := range batch {
						if r.SeqLen > paddedSL {
							paddedSL = r.SeqLen
						}
					}
					lat, err := prices.latency(0, len(batch), paddedSL)
					if err != nil {
						return nil, err
					}
					clock += lat
					res.Batches++
					res.BusyUS += lat
					res.MakespanUS = clock
					for _, r := range batch {
						res.Requests[r.ID] = RequestMetric{
							ID:        r.ID,
							SeqLen:    r.SeqLen,
							ArrivalUS: r.ArrivalUS,
							StartUS:   start,
							DoneUS:    clock,
							BatchSize: len(batch),
							PaddedSL:  paddedSL,
							Tenant:    r.Tenant,
						}
						done++
					}
				} else {
					plan, times, err := kv.plan(prices, 0, batch, kvTimes)
					kvTimes = times
					if err != nil {
						return nil, err
					}
					if plan.keep < len(batch) {
						// Eviction: the displaced suffix rejoins the queue
						// front so recomputation does not also mean
						// starvation.
						queue = prependRequests(queue, batch[plan.keep:])
					}
					clock += plan.totalLat
					res.Batches += plan.waves
					res.BusyUS += plan.totalLat
					res.MakespanUS = clock
					res.KV.Preemptions += plan.preempts
					if plan.peak > res.KV.PeakBytes {
						res.KV.PeakBytes = plan.peak
					}
					for i, r := range batch[:plan.keep] {
						t := times[i]
						res.Requests[r.ID] = RequestMetric{
							ID:        r.ID,
							SeqLen:    r.SeqLen,
							ArrivalUS: r.ArrivalUS,
							StartUS:   start + t.startOff,
							FirstUS:   start + t.firstOff,
							DoneUS:    start + t.doneOff,
							BatchSize: t.batch,
							PaddedSL:  t.paddedSL,
							Tenant:    r.Tenant,
						}
						done++
					}
				}
				admit()
				break
			}
			// The policy wants to wait: advance to the earlier of its
			// wake-up time and the next arrival.
			wake := math.Min(d.WaitUntilUS, nextArrival)
			if math.IsInf(wake, 1) || wake <= clock {
				return nil, fmt.Errorf("serving: policy %q refused to dispatch with no future event (queue %d, clock %v)",
					spec.Policy.Name(), len(queue), clock)
			}
			clock = wake
			admit()
			if consults++; consults > maxBatch+policyConsultSlack {
				return nil, fmt.Errorf("serving: policy %q consulted %d times without dispatching",
					spec.Policy.Name(), consults)
			}
		}
	}
	return res, nil
}

// takeBatch removes the picked indices from the queue and appends the
// picked requests to dst in queue order, validating the policy's pick.
// scratch is a reusable index buffer (the sorted copy of pick); both
// dst and the possibly-grown scratch are returned so callers can
// recycle them across dispatches — this runs once per batch on the
// hot path, and the old per-call copy + map allocation dominated its
// cost.
func takeBatch(dst []Request, queue *[]Request, pick []int, scratch []int, maxBatch int, policy string) ([]Request, []int, error) {
	q := *queue
	if len(pick) == 0 {
		return dst, scratch, fmt.Errorf("serving: policy %q dispatched an empty batch", policy)
	}
	if len(pick) > maxBatch {
		return dst, scratch, fmt.Errorf("serving: policy %q dispatched %d requests, above its max batch %d",
			policy, len(pick), maxBatch)
	}
	scratch = append(scratch[:0], pick...)
	sort.Ints(scratch)
	for i, idx := range scratch {
		if idx < 0 || idx >= len(q) {
			return dst, scratch, fmt.Errorf("serving: policy %q picked queue index %d of %d", policy, idx, len(q))
		}
		if i > 0 && idx == scratch[i-1] {
			return dst, scratch, fmt.Errorf("serving: policy %q picked queue index %d twice", policy, idx)
		}
		dst = append(dst, q[idx])
	}
	// Sweep the queue once, skipping the sorted picked indices — no
	// taken-set needed.
	rest := q[:0]
	pi := 0
	for i, r := range q {
		if pi < len(scratch) && i == scratch[pi] {
			pi++
			continue
		}
		rest = append(rest, r)
	}
	*queue = rest
	return dst, scratch, nil
}

// Summary is the deterministic, serialization-stable digest of a
// serving run: the roll-up the HTTP endpoint returns and the golden
// determinism tests byte-compare.
type Summary struct {
	Config         string  `json:"config"`
	Policy         string  `json:"policy"`
	Requests       int     `json:"requests"`
	Batches        int     `json:"batches"`
	MeanBatch      float64 `json:"mean_batch"`
	MakespanUS     float64 `json:"makespan_us"`
	BusyUS         float64 `json:"busy_us"`
	UtilizationPct float64 `json:"utilization_pct"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	MeanWaitUS     float64 `json:"mean_wait_us"`
	MeanLatencyUS  float64 `json:"mean_latency_us"`
	P50LatencyUS   float64 `json:"p50_latency_us"`
	P95LatencyUS   float64 `json:"p95_latency_us"`
	P99LatencyUS   float64 `json:"p99_latency_us"`

	// KV-model roll-ups, only emitted when the run had KV enabled
	// (omitempty keeps KV-off summaries byte-identical to the pre-KV
	// format). TTFT is arrival → prefill completion; the end-to-end
	// latency fields above keep their meaning.
	MeanTTFTUS      float64 `json:"mean_ttft_us,omitempty"`
	P50TTFTUS       float64 `json:"p50_ttft_us,omitempty"`
	P95TTFTUS       float64 `json:"p95_ttft_us,omitempty"`
	P99TTFTUS       float64 `json:"p99_ttft_us,omitempty"`
	Preemptions     int     `json:"preemptions,omitempty"`
	KVCapacityBytes float64 `json:"kv_capacity_bytes,omitempty"`
	KVPeakBytes     float64 `json:"kv_peak_bytes,omitempty"`

	// PerTenant rolls latency tails and drop rates up by tenant, sorted
	// by label; nil (and omitted) on single-tenant traces.
	PerTenant []TenantStats `json:"per_tenant,omitempty"`
}

// ttftDigest ranks per-request TTFTs (arrival → prefill completion)
// into a mean and nearest-rank p50/p95/p99. metrics must be non-empty
// and carry FirstUS (a KV-enabled run).
func ttftDigest(metrics []RequestMetric) (mean, p50, p95, p99 float64) {
	ttfts := make([]float64, len(metrics))
	var sum float64
	for i, m := range metrics {
		ttfts[i] = m.TTFTUS()
		sum += ttfts[i]
	}
	mean = sum / float64(len(ttfts))
	if ps, err := stats.PercentilesInPlace(ttfts, 50, 95, 99); err == nil {
		p50, p95, p99 = ps[0], ps[1], ps[2]
	}
	return mean, p50, p95, p99
}

// Latencies returns every request's end-to-end latency in trace order.
func (r *Result) Latencies() []float64 {
	out := make([]float64, len(r.Requests))
	for i, m := range r.Requests {
		out[i] = m.LatencyUS()
	}
	return out
}

// Throughput returns served requests per second over the makespan.
func (r *Result) Throughput() float64 {
	if r.MakespanUS == 0 {
		return 0
	}
	return float64(len(r.Requests)) / (r.MakespanUS / 1e6)
}

// Utilization returns the server's busy fraction of the makespan.
func (r *Result) Utilization() float64 {
	if r.MakespanUS == 0 {
		return 0
	}
	return r.BusyUS / r.MakespanUS
}

// Summary digests the run. Percentiles are nearest-rank
// (stats.Percentile) over per-request end-to-end latencies.
func (r *Result) Summary() Summary {
	s := Summary{
		Config:         r.Config.Name,
		Policy:         r.Policy,
		Requests:       len(r.Requests),
		Batches:        r.Batches,
		MakespanUS:     r.MakespanUS,
		BusyUS:         r.BusyUS,
		UtilizationPct: r.Utilization() * 100,
		ThroughputRPS:  r.Throughput(),
	}
	if r.Batches > 0 {
		s.MeanBatch = float64(len(r.Requests)) / float64(r.Batches)
	}
	if len(r.Requests) == 0 {
		return s
	}
	lats := r.Latencies()
	var waitSum float64
	for _, m := range r.Requests {
		waitSum += m.WaitUS()
	}
	s.MeanWaitUS = waitSum / float64(len(r.Requests))
	s.MeanLatencyUS = stats.Sum(lats) / float64(len(lats))
	// lats is this function's own scratch, so rank in place instead of
	// letting Percentiles duplicate a million-element slice. It only
	// errors on empty input or p outside [0,100]; neither can happen
	// here.
	if ps, err := stats.PercentilesInPlace(lats, 50, 95, 99); err == nil {
		s.P50LatencyUS, s.P95LatencyUS, s.P99LatencyUS = ps[0], ps[1], ps[2]
	}
	if r.KV != nil {
		s.Preemptions = r.KV.Preemptions
		s.KVCapacityBytes = r.KV.CapacityBytes
		s.KVPeakBytes = r.KV.PeakBytes
		s.MeanTTFTUS, s.P50TTFTUS, s.P95TTFTUS, s.P99TTFTUS = ttftDigest(r.Requests)
	}
	s.PerTenant = perTenantStats(r.Requests, nil, r.KV != nil)
	return s
}

// Serialize renders the summary as indented JSON with a trailing
// newline; the output is deterministic and byte-comparable, matching
// the trainer.RunSummary convention.
func (s Summary) Serialize() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
