package serving

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/profiler"
)

// clusterStub prices a batch at sequence length sl as sl*100 µs divided
// by the replica cluster's GPU count: a hermetic stand-in for
// data-parallel serving replicas, so heterogeneous-fleet tests are
// hand-computable.
type clusterStub struct{}

func (clusterStub) TrainProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int) (map[int]profiler.IterationProfile, error) {
	return clusterStub{}.EvalProfiles(hw, cl, m, batch, seqLens)
}

func (clusterStub) EvalProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int) (map[int]profiler.IterationProfile, error) {
	out := make(map[int]profiler.IterationProfile, len(seqLens))
	for _, sl := range seqLens {
		out[sl] = profiler.IterationProfile{SeqLen: sl, Batch: batch, TimeUS: float64(sl) * 100 / float64(cl.Normalized().GPUs)}
	}
	return out, nil
}

// fleetSim runs a fleet spec with the stub pricer and fails the test on
// error.
func fleetSim(t *testing.T, spec FleetSpec) *FleetResult {
	t.Helper()
	if spec.Profiles == nil {
		spec.Profiles = &stubSource{}
	}
	res, err := SimulateFleet(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParseRouting(t *testing.T) {
	for _, name := range []string{RoutingRoundRobin, RoutingLeastOutstanding, RoutingJSQ, RoutingPowerOfTwo} {
		r, err := ParseRouting(name, 1)
		if err != nil {
			t.Fatalf("ParseRouting(%q): %v", name, err)
		}
		if !strings.HasPrefix(r.Name(), name) {
			t.Errorf("ParseRouting(%q).Name() = %q", name, r.Name())
		}
	}
	if _, err := ParseRouting("random", 1); err == nil {
		t.Error("unknown routing should error")
	}
}

func TestRouterPicks(t *testing.T) {
	views := []ReplicaView{
		{ID: 0, Live: true, Queued: 3, InFlight: 0, HasRoom: true},
		{ID: 1, Live: true, Queued: 1, InFlight: 8, HasRoom: true},
		{ID: 2, Live: false, Queued: 0, InFlight: 0, HasRoom: true},
		{ID: 3, Live: true, Queued: 2, InFlight: 0, HasRoom: false},
		{ID: 4, Live: true, Queued: 2, InFlight: 0, HasRoom: true},
	}
	req := Request{ID: 0, SeqLen: 8}

	if got := NewJSQ().Route(req, views); got != 1 {
		t.Errorf("jsq picked %d, want 1 (shortest queue)", got)
	}
	// Least-outstanding sees replica 1's in-flight batch of 8.
	if got := NewLeastOutstanding().Route(req, views); got != 4 {
		t.Errorf("least picked %d, want 4 (2 outstanding)", got)
	}

	// Round-robin cycles over eligible replicas only: 0, 1, 4, 0, ...
	rr := NewRoundRobin()
	var picks []int
	for i := 0; i < 4; i++ {
		picks = append(picks, rr.Route(req, views))
	}
	if want := []int{0, 1, 4, 0}; fmt.Sprint(picks) != fmt.Sprint(want) {
		t.Errorf("rr picks %v, want %v", picks, want)
	}

	// po2 always lands on an eligible replica and replays identically
	// under the same seed.
	p1, p2 := NewPowerOfTwo(7), NewPowerOfTwo(7)
	for i := 0; i < 32; i++ {
		a, b := p1.Route(req, views), p2.Route(req, views)
		if a != b {
			t.Fatalf("po2 picks diverged at %d: %d vs %d", i, a, b)
		}
		if !views[a].eligible() {
			t.Fatalf("po2 picked ineligible replica %d", a)
		}
	}
	// One eligible replica: po2 must pick it.
	solo := []ReplicaView{{ID: 0, Live: false}, {ID: 1, Live: true, HasRoom: true}}
	if got := NewPowerOfTwo(1).Route(req, solo); got != 1 {
		t.Errorf("po2 with one eligible replica picked %d, want 1", got)
	}
}

// TestFleetSingleReplicaEquivalence is the strict-generalization
// property: a 1-replica round-robin fleet with an unbounded queue must
// reproduce the single-queue simulator byte-for-byte, for every
// bundled policy and arrival process.
func TestFleetSingleReplicaEquivalence(t *testing.T) {
	corpus := dataset.IWSLT15(1)
	poisson, err := PoissonTrace(corpus, 200, 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	burst, err := BurstTrace(corpus, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	replayed := replay(t,
		[]float64{0, 10, 10, 500, 2000, 2000, 2000, 9000},
		[]int{4, 9, 2, 7, 5, 5, 12, 3})

	fixed, _ := NewFixedBatch(4)
	dynamic, _ := NewDynamicBatch(4, 500)
	length, _ := NewLengthAware(4)

	for _, tc := range []struct {
		name  string
		trace Trace
	}{
		{"poisson", poisson}, {"burst", burst}, {"replay", replayed},
	} {
		for _, pol := range []Policy{fixed, dynamic, length} {
			t.Run(tc.name+"/"+pol.Name(), func(t *testing.T) {
				single, err := Simulate(Spec{
					Model: models.NewGNMT(), Trace: tc.trace, Policy: pol, Profiles: &stubSource{},
				}, gpusim.VegaFE())
				if err != nil {
					t.Fatal(err)
				}
				fleet := fleetSim(t, FleetSpec{
					Model: models.NewGNMT(), Trace: tc.trace, Policy: pol,
					Router: NewRoundRobin(), Replicas: 1,
				})
				asServing, err := fleet.AsServing()
				if err != nil {
					t.Fatal(err)
				}
				want, err := single.Summary().Serialize()
				if err != nil {
					t.Fatal(err)
				}
				got, err := asServing.Summary().Serialize()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("1-replica fleet diverged from Simulate:\nfleet: %s\nsingle: %s", got, want)
				}
			})
		}
	}
}

func TestFleetSpecValidation(t *testing.T) {
	fixed, _ := NewFixedBatch(4)
	tr := replay(t, []float64{0}, []int{5})
	base := FleetSpec{
		Model: models.NewGNMT(), Trace: tr, Policy: fixed,
		Router: NewRoundRobin(), Replicas: 2,
	}
	for name, mutate := range map[string]func(*FleetSpec){
		"nil model":        func(s *FleetSpec) { s.Model = nil },
		"nil policy":       func(s *FleetSpec) { s.Policy = nil },
		"nil router":       func(s *FleetSpec) { s.Router = nil },
		"zero replicas":    func(s *FleetSpec) { s.Replicas = 0 },
		"replica overflow": func(s *FleetSpec) { s.Replicas = MaxFleetReplicas + 1 },
		"negative cap":     func(s *FleetSpec) { s.QueueCap = -1 },
		"cluster mismatch": func(s *FleetSpec) { s.Clusters = []gpusim.ClusterConfig{gpusim.SingleGPU()} },
		"bad cluster":      func(s *FleetSpec) { s.Clusters = []gpusim.ClusterConfig{{GPUs: 2}, {GPUs: 2}} },
		"empty trace":      func(s *FleetSpec) { s.Trace = Trace{} },
		"autoscale min":    func(s *FleetSpec) { s.Autoscale = &AutoscaleConfig{Min: 0, Max: 4, UpDepth: 4} },
		"autoscale max":    func(s *FleetSpec) { s.Autoscale = &AutoscaleConfig{Min: 2, Max: 1, UpDepth: 4} },
		"autoscale depths": func(s *FleetSpec) { s.Autoscale = &AutoscaleConfig{Min: 1, Max: 4, UpDepth: 2, DownDepth: 2} },
		"autoscale cooldown": func(s *FleetSpec) {
			s.Autoscale = &AutoscaleConfig{Min: 1, Max: 4, UpDepth: 4, CooldownUS: math.Inf(1)}
		},
		"initial outside bounds": func(s *FleetSpec) {
			s.Replicas = 8
			s.Autoscale = &AutoscaleConfig{Min: 1, Max: 4, UpDepth: 4}
		},
	} {
		spec := base
		mutate(&spec)
		if _, err := SimulateFleet(spec, gpusim.VegaFE()); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
}

// TestFleetAdmissionControl pins the bounded-queue timeline by hand: a
// busy single replica with queue capacity 1 rejects the arrival that
// finds the slot taken, with a typed reason.
func TestFleetAdmissionControl(t *testing.T) {
	fixed, _ := NewFixedBatch(1)
	res := fleetSim(t, FleetSpec{
		Model: models.NewGNMT(),
		// SL 10 → 1000 µs per batch under the stub pricer.
		Trace:    replay(t, []float64{0, 100, 200, 1100}, []int{10, 10, 10, 10}),
		Policy:   fixed,
		Router:   NewRoundRobin(),
		Replicas: 1,
		QueueCap: 1,
	})
	if len(res.Rejections) != 1 || res.Rejections[0].ID != 2 {
		t.Fatalf("rejections = %+v, want exactly request 2", res.Rejections)
	}
	rej := res.Rejections[0]
	if rej.Reason != RejectReasonQueueFull || rej.ArrivalUS != 200 || rej.SeqLen != 10 {
		t.Errorf("rejection = %+v, want queue_full at 200 µs with SL 10", rej)
	}
	if len(res.Requests) != 3 {
		t.Fatalf("served %d requests, want 3", len(res.Requests))
	}
	wantDone := []float64{1000, 2000, 3000}
	for i, m := range res.Requests {
		if m.DoneUS != wantDone[i] {
			t.Errorf("request %d done at %v, want %v", m.ID, m.DoneUS, wantDone[i])
		}
	}
	sum := res.Summary()
	if sum.Requests != 4 || sum.Served != 3 || sum.Rejected != 1 {
		t.Errorf("summary counts %d/%d/%d, want 4/3/1", sum.Requests, sum.Served, sum.Rejected)
	}
	if sum.DropRatePct != 25 {
		t.Errorf("drop rate %v%%, want 25%%", sum.DropRatePct)
	}
	if _, err := res.AsServing(); err == nil {
		t.Error("AsServing should refuse a run with rejections")
	}
}

// TestFleetHeterogeneousReplicas gives one replica two GPUs: under
// least-outstanding routing it must serve more requests than the
// single-GPU replica, because each of its batches finishes twice as
// fast.
func TestFleetHeterogeneousReplicas(t *testing.T) {
	fixed, _ := NewFixedBatch(1)
	n := 64
	arrivals := make([]float64, n)
	sls := make([]int, n)
	for i := range arrivals {
		arrivals[i] = float64(i) * 300
		sls[i] = 10 // 1000 µs on 1 GPU, 500 µs on 2
	}
	res := fleetSim(t, FleetSpec{
		Model:    models.NewGNMT(),
		Trace:    replay(t, arrivals, sls),
		Policy:   fixed,
		Router:   NewLeastOutstanding(),
		Replicas: 2,
		Clusters: []gpusim.ClusterConfig{gpusim.SingleGPU(), gpusim.DefaultCluster(2)},
		Profiles: clusterStub{},
	})
	slow, fast := res.ReplicaStats[0], res.ReplicaStats[1]
	if slow.GPUs != 1 || fast.GPUs != 2 {
		t.Fatalf("replica GPUs %d/%d, want 1/2", slow.GPUs, fast.GPUs)
	}
	if fast.Served <= slow.Served {
		t.Errorf("2-GPU replica served %d <= 1-GPU replica's %d", fast.Served, slow.Served)
	}
	if got := slow.Served + fast.Served; got != n {
		t.Errorf("replicas served %d, want %d", got, n)
	}
}

// TestFleetAutoscale drives a load spike through a 1..3 autoscaled
// fleet: the spike must scale it up, the drain back down, and the
// replica-seconds cost proxy must come in under always-on peak
// capacity.
func TestFleetAutoscale(t *testing.T) {
	fixed, _ := NewFixedBatch(1)
	var arrivals []float64
	var sls []int
	// 40 requests in a fast burst (every 50 µs), then a long quiet
	// tail while the backlog drains.
	for i := 0; i < 40; i++ {
		arrivals = append(arrivals, float64(i)*50)
		sls = append(sls, 10)
	}
	arrivals = append(arrivals, 120_000)
	sls = append(sls, 10)
	res := fleetSim(t, FleetSpec{
		Model:    models.NewGNMT(),
		Trace:    replay(t, arrivals, sls),
		Policy:   fixed,
		Router:   NewJSQ(),
		Replicas: 1,
		Autoscale: &AutoscaleConfig{
			Min: 1, Max: 3, UpDepth: 2, DownDepth: 0.5, CooldownUS: 100,
		},
	})
	if res.ScaleUps == 0 {
		t.Error("load spike did not scale the fleet up")
	}
	if res.ScaleDowns == 0 {
		t.Error("drained fleet did not scale down")
	}
	if res.PeakReplicas <= 1 || res.PeakReplicas > 3 {
		t.Errorf("peak replicas %d, want in (1, 3]", res.PeakReplicas)
	}
	sum := res.Summary()
	if sum.Served != len(arrivals) {
		t.Errorf("served %d, want %d (no admission bound configured)", sum.Served, len(arrivals))
	}
	alwaysOn := 3 * res.MakespanUS / 1e6
	if sum.ReplicaSeconds >= alwaysOn {
		t.Errorf("replica-seconds %v not below always-on peak %v", sum.ReplicaSeconds, alwaysOn)
	}
	if sum.ReplicaSeconds <= 0 {
		t.Errorf("replica-seconds %v, want positive", sum.ReplicaSeconds)
	}
}

// TestFleetDeterminism runs the same seeded spec twice — po2 routing,
// so the router's RNG is in play — and demands byte-identical
// summaries.
func TestFleetDeterminism(t *testing.T) {
	corpus := dataset.IWSLT15(1)
	trace, err := PoissonTrace(corpus, 300, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		dynamic, _ := NewDynamicBatch(8, 2000)
		res := fleetSim(t, FleetSpec{
			Model: models.NewGNMT(), Trace: trace, Policy: dynamic,
			Router: NewPowerOfTwo(5), Replicas: 3, QueueCap: 16,
		})
		buf, err := res.Summary().Serialize()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("identical fleet specs produced different summaries:\n%s\nvs\n%s", a, b)
	}
}

// TestFleetJSQBeatsRoundRobin is the routing-policy payoff on a skewed
// trace: with per-batch service times set by sequence length,
// queue-aware routing must not lose to the oblivious baseline on the
// p99 tail.
func TestFleetJSQBeatsRoundRobin(t *testing.T) {
	corpus := dataset.IWSLT15(1)
	// Past the 3-replica knee, round-robin's obliviousness piles short
	// requests behind long batches while JSQ keeps the queues level.
	trace, err := PoissonTrace(corpus, 400, 2000, 13)
	if err != nil {
		t.Fatal(err)
	}
	fixedSpec := func(r Router) FleetSpec {
		dynamic, _ := NewDynamicBatch(4, 1000)
		return FleetSpec{
			Model: models.NewGNMT(), Trace: trace, Policy: dynamic,
			Router: r, Replicas: 3,
		}
	}
	rr := fleetSim(t, fixedSpec(NewRoundRobin())).Summary()
	jsq := fleetSim(t, fixedSpec(NewJSQ())).Summary()
	if jsq.P99LatencyUS >= rr.P99LatencyUS {
		t.Errorf("JSQ p99 %v not below round-robin %v past the knee", jsq.P99LatencyUS, rr.P99LatencyUS)
	}
	if jsq.MeanWaitUS >= rr.MeanWaitUS {
		t.Errorf("JSQ mean wait %v not below round-robin %v past the knee", jsq.MeanWaitUS, rr.MeanWaitUS)
	}
	if jsq.Served != rr.Served {
		t.Errorf("routing changed the served count: %d vs %d", jsq.Served, rr.Served)
	}
}

// stuckPolicy violates the Policy contract: it refuses to dispatch
// even when nothing will ever wake the server again.
type stuckPolicy struct{}

func (stuckPolicy) Name() string  { return "stuck" }
func (stuckPolicy) MaxBatch() int { return 4 }
func (stuckPolicy) Decide(queue []Request, nowUS, nextArrivalUS float64) Decision {
	return Decision{WaitUntilUS: math.Inf(1)}
}

// napPolicy keeps asking for tiny finite waits without ever
// dispatching — the runaway-consult pathology the bound exists for.
type napPolicy struct{}

func (napPolicy) Name() string  { return "nap" }
func (napPolicy) MaxBatch() int { return 4 }
func (napPolicy) Decide(queue []Request, nowUS, nextArrivalUS float64) Decision {
	return Decision{WaitUntilUS: nowUS + 1}
}

// pastPolicy asks to wait until a time that already passed.
type pastPolicy struct{}

func (pastPolicy) Name() string  { return "past" }
func (pastPolicy) MaxBatch() int { return 4 }
func (pastPolicy) Decide(queue []Request, nowUS, nextArrivalUS float64) Decision {
	return Decision{WaitUntilUS: nowUS - 10}
}

// TestFleetPolicyMisbehavior: contract-violating policies must turn
// into errors, never hangs.
func TestFleetPolicyMisbehavior(t *testing.T) {
	for name, tc := range map[string]struct {
		policy  Policy
		wantErr string
	}{
		"stuck":         {stuckPolicy{}, "refused to dispatch"},
		"runaway waits": {napPolicy{}, "consulted"},
		"past deadline": {pastPolicy{}, "the past"},
	} {
		t.Run(name, func(t *testing.T) {
			_, err := SimulateFleet(FleetSpec{
				Model: models.NewGNMT(), Trace: replay(t, []float64{0, 5}, []int{3, 4}),
				Policy: tc.policy, Router: NewRoundRobin(), Replicas: 1,
				Profiles: &stubSource{},
			}, gpusim.VegaFE())
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want one containing %q", err, tc.wantErr)
			}
		})
	}
}

// wildRouter returns an out-of-range replica; the fleet must surface
// the contract violation as ErrBadRoute, not silently reroute (the old
// fallback masked router bugs and made results depend on which replica
// the fallback happened to choose).
type wildRouter struct{ pick int }

func (wildRouter) Name() string                                    { return "wild" }
func (w wildRouter) Route(req Request, replicas []ReplicaView) int { return w.pick }

func TestFleetBuggyRouterRejected(t *testing.T) {
	// Out of range, and in-range-but-ineligible once queues fill
	// (QueueCap 1 with a never-dispatching policy saturates replica 0).
	for name, router := range map[string]Router{
		"out of range": wildRouter{pick: 99},
		"negative":     wildRouter{pick: -1},
	} {
		t.Run(name, func(t *testing.T) {
			fixed, _ := NewFixedBatch(2)
			_, err := SimulateFleet(FleetSpec{
				Model: models.NewGNMT(), Trace: replay(t, []float64{0, 5, 9}, []int{3, 4, 5}),
				Policy: fixed, Router: router, Replicas: 2,
				Profiles: &stubSource{},
			}, gpusim.VegaFE())
			if !errors.Is(err, ErrBadRoute) {
				t.Fatalf("error = %v, want ErrBadRoute", err)
			}
			if err == nil || !strings.Contains(err.Error(), `router "wild"`) {
				t.Fatalf("error %v should name the misbehaving router", err)
			}
		})
	}
}

func TestAsServingErrors(t *testing.T) {
	fixed, _ := NewFixedBatch(2)
	res := fleetSim(t, FleetSpec{
		Model: models.NewGNMT(), Trace: replay(t, []float64{0, 5}, []int{3, 4}),
		Policy: fixed, Router: NewRoundRobin(), Replicas: 2,
	})
	if _, err := res.AsServing(); err == nil {
		t.Error("AsServing should refuse a multi-replica fleet")
	}
}
