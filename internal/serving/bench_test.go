package serving

// Hot-path benchmarks for the serving and fleet event loops. These are
// the benchmarks the in-repo perf trajectory tracks: BENCH_seed.json
// holds the pre-optimization baseline, BENCH_pr6.json the first
// optimized snapshot, and CI's bench-regression gate compares fresh
// runs against the committed snapshot (see cmd/benchgate).
//
// Both benchmarks price batches through the hermetic stub source so
// they measure the event loop — scheduling, routing, batching,
// metrics — rather than the analytical cost model, and both report
// allocations: the alloc trajectory is as load-bearing as ns/op, since
// at millions of requests GC pressure dominates wall time.

import (
	"testing"

	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
)

// benchCorpus is a fixed synthetic SL pool matching the golden specs'
// shape: 48 distinct lengths in [4, 51].
func benchCorpus(b *testing.B) *dataset.Corpus {
	b.Helper()
	lengths := make([]int, 192)
	for i := range lengths {
		lengths[i] = 4 + (i*13)%48
	}
	c, err := dataset.Synthetic("bench", lengths, 1000)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkFleetMillionEvents is the headline fleet-scale benchmark:
// 128 replicas serving one million Poisson arrivals under dynamic
// batching and least-outstanding routing. One iteration is one full
// simulation, so ns/op amortizes over ~2M+ scheduler events.
func BenchmarkFleetMillionEvents(b *testing.B) {
	const (
		replicas = 128
		requests = 1_000_000
		rate     = 400_000 // req/s: ~60% of the stub fleet's capacity
	)
	trace, err := PoissonTrace(benchCorpus(b), requests, rate, 42)
	if err != nil {
		b.Fatal(err)
	}
	policy, err := NewDynamicBatch(16, 2_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SimulateFleet(FleetSpec{
			Model:    models.NewGNMT(),
			Trace:    trace,
			Policy:   policy,
			Router:   NewLeastOutstanding(),
			Replicas: replicas,
			Profiles: &stubSource{},
		}, gpusim.VegaFE())
		if err != nil {
			b.Fatal(err)
		}
		if got := len(res.Requests); got != requests {
			b.Fatalf("served %d of %d requests", got, requests)
		}
		sum := res.Summary()
		if sum.Served != requests {
			b.Fatalf("summary served %d, want %d", sum.Served, requests)
		}
	}
}

// BenchmarkFleetKV measures the memory-aware fleet: 32 replicas,
// 200k arrivals, the KV-cache capacity model with a ceiling tight
// enough that batches split into preemption waves, cache-pressure
// routing, and the two-phase prefill/decode pricing. It bounds the
// cost of the KV bookkeeping relative to BenchmarkFleetMillionEvents'
// KV-less loop and pins its allocation behavior.
func BenchmarkFleetKV(b *testing.B) {
	const (
		replicas = 32
		requests = 200_000
		rate     = 100_000 // req/s: ~60% of the stub fleet's capacity
	)
	trace, err := PoissonTrace(benchCorpus(b), requests, rate, 42)
	if err != nil {
		b.Fatal(err)
	}
	policy, err := NewDynamicBatch(16, 2_000)
	if err != nil {
		b.Fatal(err)
	}
	kv := &KVConfig{
		// ~8 worst-case contexts ((51+16)×1000B each) per replica, so a
		// full 16-batch preempts but single requests always admit.
		CapacityBytes: 536_000,
		DecodeSteps:   16,
		BytesPerToken: 1000,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SimulateFleet(FleetSpec{
			Model:    models.NewGNMT(),
			Trace:    trace,
			Policy:   policy,
			Router:   NewKVRouter(),
			Replicas: replicas,
			Profiles: &stubSource{},
			KV:       kv,
		}, gpusim.VegaFE())
		if err != nil {
			b.Fatal(err)
		}
		if got := len(res.Requests); got != requests {
			b.Fatalf("served %d of %d requests", got, requests)
		}
		if res.KV == nil || res.KV.PeakBytes > kv.CapacityBytes {
			b.Fatalf("KV stats %+v violate the %v-byte ceiling", res.KV, kv.CapacityBytes)
		}
	}
}

// BenchmarkServingHotPath measures the single-queue event loop — the
// admit/consult/dispatch/record cycle every fleet replica runs — over
// 200k arrivals near saturation, plus the summary roll-up.
func BenchmarkServingHotPath(b *testing.B) {
	const (
		requests = 200_000
		rate     = 3_000 // req/s: ~85% of the stub server's capacity
	)
	trace, err := PoissonTrace(benchCorpus(b), requests, rate, 7)
	if err != nil {
		b.Fatal(err)
	}
	policy, err := NewDynamicBatch(16, 5_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(Spec{
			Model:    models.NewGNMT(),
			Trace:    trace,
			Policy:   policy,
			Profiles: &stubSource{},
		}, gpusim.VegaFE())
		if err != nil {
			b.Fatal(err)
		}
		if got := len(res.Requests); got != requests {
			b.Fatalf("served %d of %d requests", got, requests)
		}
		sum := res.Summary()
		if sum.Requests != requests {
			b.Fatalf("summary requests %d, want %d", sum.Requests, requests)
		}
	}
}
