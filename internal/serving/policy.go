package serving

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Decision is a batching policy's verdict at one decision instant.
type Decision struct {
	// Dispatch, when true, launches the queued requests at the Pick
	// indices as one batch.
	Dispatch bool
	// Pick holds queue indices to launch; consulted only when Dispatch.
	Pick []int
	// WaitUntilUS is the next time the policy wants to be consulted if
	// no request arrives first; +Inf means "only wake me on arrival".
	// Consulted only when !Dispatch.
	WaitUntilUS float64
}

// Policy decides when the server launches a batch and which queued
// requests it groups. Decide is called at every decision instant —
// whenever the server is free and the queue is non-empty — with the
// current queue (oldest first), the clock, and the next arrival time
// (+Inf when the trace is drained). Implementations must be
// deterministic pure functions of their arguments, must dispatch when
// nextArrivalUS is +Inf (nothing else will ever wake the server), and
// must never return an empty Pick with Dispatch set.
type Policy interface {
	// Name labels the policy in reports ("fixed(8)", "dynamic(8,500µs)").
	Name() string
	// MaxBatch is the largest batch the policy will ever form.
	MaxBatch() int
	// Decide renders the verdict for the current queue state.
	Decide(queue []Request, nowUS, nextArrivalUS float64) Decision
}

// fifoPrefix is the shared immutable 0..n-1 index table behind
// firstN. Callers treat a Decision's Pick as read-only (takeBatch
// sorts a private copy), so every FIFO dispatch can alias one table
// instead of allocating — the fixed and dynamic policies pick a
// prefix on every single batch.
var fifoPrefix = func() []int {
	out := make([]int, 4096)
	for i := range out {
		out[i] = i
	}
	return out
}()

// firstN returns the indices 0..n-1: the FIFO prefix of the queue.
// The result aliases a shared table and must not be mutated.
func firstN(n int) []int {
	if n <= len(fifoPrefix) {
		return fifoPrefix[:n]
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// fixedBatch waits until a full batch is queued, then launches it in
// FIFO order. Simple and throughput-friendly, but at low arrival rates
// the first request of a batch can wait unboundedly — the pathology
// the dynamic policy exists to fix. The trace drain launches partial
// batches.
type fixedBatch struct{ size int }

// NewFixedBatch returns the fixed-size batching policy.
func NewFixedBatch(size int) (Policy, error) {
	if size <= 0 {
		return nil, fmt.Errorf("serving: fixed batch size must be positive, got %d", size)
	}
	return fixedBatch{size: size}, nil
}

func (p fixedBatch) Name() string  { return fmt.Sprintf("fixed(%d)", p.size) }
func (p fixedBatch) MaxBatch() int { return p.size }

func (p fixedBatch) Decide(queue []Request, nowUS, nextArrivalUS float64) Decision {
	if len(queue) >= p.size {
		return Decision{Dispatch: true, Pick: firstN(p.size)}
	}
	if math.IsInf(nextArrivalUS, 1) {
		return Decision{Dispatch: true, Pick: firstN(len(queue))}
	}
	return Decision{WaitUntilUS: math.Inf(1)}
}

// dynamicBatch is timeout-bounded dynamic batching (the vLLM-style
// default): launch as soon as a full batch is queued, or when the
// oldest queued request has waited timeoutUS — whichever comes first.
// The timeout caps queueing delay at low load; the size cap keeps
// batches efficient at high load.
type dynamicBatch struct {
	size      int
	timeoutUS float64
}

// NewDynamicBatch returns the timeout-bounded dynamic batching policy.
func NewDynamicBatch(size int, timeoutUS float64) (Policy, error) {
	if size <= 0 {
		return nil, fmt.Errorf("serving: dynamic batch size must be positive, got %d", size)
	}
	if timeoutUS < 0 || math.IsNaN(timeoutUS) || math.IsInf(timeoutUS, 0) {
		return nil, fmt.Errorf("serving: dynamic batch timeout must be a finite non-negative duration, got %v", timeoutUS)
	}
	return dynamicBatch{size: size, timeoutUS: timeoutUS}, nil
}

func (p dynamicBatch) Name() string  { return fmt.Sprintf("dynamic(%d,%.4gus)", p.size, p.timeoutUS) }
func (p dynamicBatch) MaxBatch() int { return p.size }

func (p dynamicBatch) Decide(queue []Request, nowUS, nextArrivalUS float64) Decision {
	if len(queue) >= p.size {
		return Decision{Dispatch: true, Pick: firstN(p.size)}
	}
	deadline := queue[0].ArrivalUS + p.timeoutUS
	if nowUS >= deadline || math.IsInf(nextArrivalUS, 1) {
		return Decision{Dispatch: true, Pick: firstN(len(queue))}
	}
	return Decision{WaitUntilUS: deadline}
}

// lengthAware is the greedy SL-histogram-exploiting batcher: it gates
// like the fixed policy (launch when a full batch is queued), but
// instead of the FIFO prefix it groups the oldest request with the
// queued requests whose sequence lengths are closest to it. With
// pad-to-max batching the batch's cost is dictated by its longest
// member, so co-scheduling similar lengths cuts padding waste — the
// serving-side use of the paper's observation that SL dictates work.
// The oldest request is always included, so no request starves.
type lengthAware struct{ size int }

// NewLengthAware returns the greedy length-aware batching policy.
func NewLengthAware(size int) (Policy, error) {
	if size <= 0 {
		return nil, fmt.Errorf("serving: length-aware batch size must be positive, got %d", size)
	}
	return lengthAware{size: size}, nil
}

func (p lengthAware) Name() string  { return fmt.Sprintf("length(%d)", p.size) }
func (p lengthAware) MaxBatch() int { return p.size }

// candidateWindow bounds how deep into the queue the length-aware
// picker looks: the oldest window of requests, never fewer than
// minLengthAwareWindow. Without the bound, a deep backlog (burst
// traces, overload) makes every dispatch sort the whole queue —
// superlinear total work in the trace length; with it, each dispatch
// is O(window log window) and older requests still drain first.
const minLengthAwareWindow = 128

func (p lengthAware) candidateWindow() int {
	w := 16 * p.size
	if w < minLengthAwareWindow {
		w = minLengthAwareWindow
	}
	return w
}

// laSorter orders candidate queue indices by SL distance from the
// anchor, ties toward earlier arrival. It lives in a sync.Pool so a
// length-aware dispatch costs no sort scratch or comparison-closure
// allocation; the policy value itself stays stateless, which keeps
// Decide safe to call from concurrently advancing replicas.
type laSorter struct {
	idx    []int
	queue  []Request
	anchor int
}

func (s *laSorter) Len() int      { return len(s.idx) }
func (s *laSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }
func (s *laSorter) Less(a, b int) bool {
	da := absInt(s.queue[s.idx[a]].SeqLen - s.anchor)
	db := absInt(s.queue[s.idx[b]].SeqLen - s.anchor)
	if da != db {
		return da < db
	}
	return s.idx[a] < s.idx[b]
}

var laSorterPool = sync.Pool{New: func() any { return new(laSorter) }}

func (p lengthAware) Decide(queue []Request, nowUS, nextArrivalUS float64) Decision {
	if len(queue) < p.size && !math.IsInf(nextArrivalUS, 1) {
		return Decision{WaitUntilUS: math.Inf(1)}
	}
	n := p.size
	if len(queue) < n {
		n = len(queue)
	}
	// Anchor on the oldest request, then greedily add the n-1 queued
	// requests with the closest SLs among the oldest candidateWindow
	// entries; ties break toward earlier arrival so the pick is
	// deterministic and FIFO-biased.
	anchor := queue[0].SeqLen
	limit := len(queue)
	if w := p.candidateWindow(); limit > w {
		limit = w
	}
	s := laSorterPool.Get().(*laSorter)
	s.idx = s.idx[:0]
	for i := 1; i < limit; i++ {
		s.idx = append(s.idx, i)
	}
	s.queue, s.anchor = queue, anchor
	sort.Sort(s)
	pick := make([]int, 0, n)
	pick = append(pick, 0)
	pick = append(pick, s.idx[:n-1]...)
	s.queue = nil
	laSorterPool.Put(s)
	sort.Ints(pick)
	return Decision{Dispatch: true, Pick: pick}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Policy names accepted by ParsePolicy.
const (
	PolicyFixed   = "fixed"
	PolicyDynamic = "dynamic"
	PolicyLength  = "length"
	PolicyWFQ     = "wfq"
)

// ParsePolicy builds a policy from its CLI/HTTP spelling: "fixed",
// "dynamic", "length" or "wfq". timeoutUS applies to "dynamic" and
// "wfq" only.
func ParsePolicy(name string, size int, timeoutUS float64) (Policy, error) {
	switch name {
	case PolicyFixed:
		return NewFixedBatch(size)
	case PolicyDynamic:
		return NewDynamicBatch(size, timeoutUS)
	case PolicyLength:
		return NewLengthAware(size)
	case PolicyWFQ:
		return NewWFQBatch(size, timeoutUS)
	default:
		return nil, fmt.Errorf("serving: unknown policy %q (want %s, %s, %s or %s)",
			name, PolicyFixed, PolicyDynamic, PolicyLength, PolicyWFQ)
	}
}
