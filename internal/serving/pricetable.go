package serving

import (
	"fmt"
	"math"
	"sync"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/trainer"
)

// priceTable is the flat per-(cluster, batch, SL) batch-latency table
// both event loops price against. It replaces the map-keyed memo the
// simulators were built with: the memo hashed a composite key on every
// launch, where the table is one integer offset into a dense float64
// slice. The maxBatch row of every distinct cluster is prefetched in
// one bulk ProfileSource call (full batches are the hot case, and the
// padded SL of any batch is one of the trace's SLs); partial-batch
// sizes fill their slots on first use.
//
// Unfilled slots hold NaN — a value no profile source can legitimately
// produce, so presence needs no side bitmap. On-demand fills are
// guarded by a mutex so parallel replica simulation (see
// FleetSpec.Parallelism) can price concurrently.
type priceTable struct {
	src      trainer.ProfileSource
	hw       gpusim.Config
	model    models.Model
	maxBatch int

	// clusters are the distinct replica clusters in first-occurrence
	// order; replicas address them by index.
	clusters []gpusim.ClusterConfig

	// slDense maps a sequence length to its 1-based table index (0 =
	// unknown SL) when the trace's max SL is small enough for a dense
	// array; slSparse is the fallback for pathological SLs.
	slDense  []int32
	slSparse map[int]int
	numSL    int

	mu     sync.RWMutex
	prices []float64 // [cluster][batch-1][slIdx], NaN = unfilled
}

// maxDenseSL bounds the dense SL-index array: traces with longer
// sequences fall back to a map index without losing correctness.
const maxDenseSL = 1 << 16

// newPriceTable builds the table over the distinct clusters and the
// trace's unique SLs, prefetching every cluster's maxBatch row.
func newPriceTable(src trainer.ProfileSource, hw gpusim.Config, model models.Model,
	maxBatch int, clusters []gpusim.ClusterConfig, uniqueSLs []int) (*priceTable, error) {
	t := &priceTable{
		src:      src,
		hw:       hw,
		model:    model,
		maxBatch: maxBatch,
		clusters: clusters,
		numSL:    len(uniqueSLs),
	}
	maxSL := 0
	for _, sl := range uniqueSLs {
		if sl > maxSL {
			maxSL = sl
		}
	}
	if maxSL < maxDenseSL {
		t.slDense = make([]int32, maxSL+1)
		for i, sl := range uniqueSLs {
			t.slDense[sl] = int32(i) + 1
		}
	} else {
		t.slSparse = make(map[int]int, len(uniqueSLs))
		for i, sl := range uniqueSLs {
			t.slSparse[sl] = i + 1
		}
	}
	t.prices = make([]float64, len(clusters)*maxBatch*t.numSL)
	for i := range t.prices {
		t.prices[i] = math.NaN()
	}
	for ci, cl := range clusters {
		profiles, err := src.EvalProfiles(hw, cl, model, maxBatch, uniqueSLs)
		if err != nil {
			return nil, err
		}
		base := (ci*maxBatch + maxBatch - 1) * t.numSL
		for sl, prof := range profiles {
			if si := t.slIndex(sl); si > 0 {
				t.prices[base+si-1] = prof.TimeUS
			}
		}
	}
	return t, nil
}

// slIndex returns the 1-based table index for sl, or 0 when the SL is
// not one of the trace's.
func (t *priceTable) slIndex(sl int) int {
	if t.slDense != nil {
		if sl < len(t.slDense) {
			return int(t.slDense[sl])
		}
		return 0
	}
	return t.slSparse[sl]
}

// latency prices one batch of the given size padded to sl on cluster
// clusterIdx. The fast path is a single indexed load; misses (partial
// batch sizes, first use) fall through to the profile source and fill
// the slot.
func (t *priceTable) latency(clusterIdx, batch, sl int) (float64, error) {
	si := t.slIndex(sl)
	if si == 0 {
		// A padded SL outside the trace's SL set cannot arise from the
		// bundled event loops (the padded SL is some request's SL), but a
		// direct uncached price keeps hypothetical callers correct.
		t.mu.Lock()
		us, err := t.fetch(clusterIdx, batch, sl)
		t.mu.Unlock()
		return us, err
	}
	off := (clusterIdx*t.maxBatch+batch-1)*t.numSL + si - 1
	t.mu.RLock()
	us := t.prices[off]
	t.mu.RUnlock()
	if !math.IsNaN(us) {
		return us, nil
	}
	// Fill misses under the write lock: besides guarding the slot, this
	// serializes all on-demand ProfileSource calls, so sources need not
	// be thread-safe even when replicas advance concurrently.
	t.mu.Lock()
	defer t.mu.Unlock()
	if us = t.prices[off]; !math.IsNaN(us) {
		return us, nil
	}
	us, err := t.fetch(clusterIdx, batch, sl)
	if err != nil {
		return 0, err
	}
	t.prices[off] = us
	return us, nil
}

// fetch prices one (cluster, batch, SL) through the profile source.
func (t *priceTable) fetch(clusterIdx, batch, sl int) (float64, error) {
	profiles, err := t.src.EvalProfiles(t.hw, t.clusters[clusterIdx], t.model, batch, []int{sl})
	if err != nil {
		return 0, err
	}
	prof, ok := profiles[sl]
	if !ok {
		return 0, fmt.Errorf("serving: profile source returned no eval profile for batch %d SL %d", batch, sl)
	}
	return prof.TimeUS, nil
}
