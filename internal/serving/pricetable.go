package serving

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/trainer"
)

// ErrNonFinitePrice is returned (wrapped) when a profile source yields
// a NaN or infinite batch latency. The table stores NaN as its
// unfilled-slot sentinel, so a non-finite price must be rejected at
// fill time: stored as-is it would be indistinguishable from an empty
// slot, and every later lookup would silently re-fetch it under the
// write lock — a mutex-guarded refill on the hot path masking what is
// always an upstream cost-model bug.
var ErrNonFinitePrice = errors.New("serving: profile source returned non-finite latency")

// decodeSL is the sequence length a decode step is priced at: one new
// token per sequence flows through the forward pass, so the per-step
// cost of a decode batch is the eval profile at SL 1.
const decodeSL = 1

// priceTable is the flat per-(cluster, batch, SL) batch-latency table
// both event loops price against. It replaces the map-keyed memo the
// simulators were built with: the memo hashed a composite key on every
// launch, where the table is one integer offset into a dense float64
// slice. The maxBatch row of every distinct cluster is prefetched in
// one bulk ProfileSource call (full batches are the hot case, and the
// padded SL of any batch is one of the trace's SLs); partial-batch
// sizes fill their slots on first use.
//
// With the KV model enabled the table additionally holds a decode row
// per cluster: the per-decode-step latency at each batch size, priced
// at SL 1 through the same ProfileSource seam. KV-off runs never touch
// (or prefetch) the decode row, so their profile-source call sequence
// is byte-for-byte the pre-KV one.
//
// Unfilled slots hold NaN — a value no valid profile can produce
// (fills reject non-finite prices with ErrNonFinitePrice), so presence
// needs no side bitmap. On-demand fills are guarded by a mutex so
// parallel replica simulation (see FleetSpec.Parallelism) can price
// concurrently.
type priceTable struct {
	src      trainer.ProfileSource
	hw       gpusim.Config
	model    models.Model
	maxBatch int

	// clusters are the distinct replica clusters in first-occurrence
	// order; replicas address them by index.
	clusters []gpusim.ClusterConfig

	// slDense maps a sequence length to its 1-based table index (0 =
	// unknown SL) when the trace's max SL is small enough for a dense
	// array; slSparse is the fallback for pathological SLs.
	slDense  []int32
	slSparse map[int]int
	numSL    int

	mu     sync.RWMutex
	prices []float64 // [cluster][batch-1][slIdx], NaN = unfilled
	decode []float64 // [cluster][batch-1] per-decode-step latency; nil when KV is off
}

// maxDenseSL bounds the dense SL-index array: traces with longer
// sequences fall back to a map index without losing correctness.
const maxDenseSL = 1 << 16

// checkFinite validates one fetched price at fill time.
func checkFinite(us float64, batch, sl int) error {
	if math.IsNaN(us) || math.IsInf(us, 0) {
		return fmt.Errorf("%w: %v for batch %d SL %d", ErrNonFinitePrice, us, batch, sl)
	}
	return nil
}

// newPriceTable builds the table over the distinct clusters and the
// trace's unique SLs, prefetching every cluster's maxBatch row — and,
// with withDecode, its maxBatch decode-step price.
func newPriceTable(src trainer.ProfileSource, hw gpusim.Config, model models.Model,
	maxBatch int, clusters []gpusim.ClusterConfig, uniqueSLs []int, withDecode bool) (*priceTable, error) {
	t := &priceTable{
		src:      src,
		hw:       hw,
		model:    model,
		maxBatch: maxBatch,
		clusters: clusters,
		numSL:    len(uniqueSLs),
	}
	maxSL := 0
	for _, sl := range uniqueSLs {
		if sl > maxSL {
			maxSL = sl
		}
	}
	if maxSL < maxDenseSL {
		t.slDense = make([]int32, maxSL+1)
		for i, sl := range uniqueSLs {
			t.slDense[sl] = int32(i) + 1
		}
	} else {
		t.slSparse = make(map[int]int, len(uniqueSLs))
		for i, sl := range uniqueSLs {
			t.slSparse[sl] = i + 1
		}
	}
	t.prices = make([]float64, len(clusters)*maxBatch*t.numSL)
	for i := range t.prices {
		t.prices[i] = math.NaN()
	}
	if withDecode {
		t.decode = make([]float64, len(clusters)*maxBatch)
		for i := range t.decode {
			t.decode[i] = math.NaN()
		}
	}
	for ci, cl := range clusters {
		profiles, err := src.EvalProfiles(hw, cl, model, maxBatch, uniqueSLs)
		if err != nil {
			return nil, err
		}
		base := (ci*maxBatch + maxBatch - 1) * t.numSL
		for sl, prof := range profiles {
			if si := t.slIndex(sl); si > 0 {
				if err := checkFinite(prof.TimeUS, maxBatch, sl); err != nil {
					return nil, err
				}
				t.prices[base+si-1] = prof.TimeUS
			}
		}
		if withDecode {
			if _, err := t.fillDecode(ci, maxBatch); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// slIndex returns the 1-based table index for sl, or 0 when the SL is
// not one of the trace's.
func (t *priceTable) slIndex(sl int) int {
	if t.slDense != nil {
		if sl < len(t.slDense) {
			return int(t.slDense[sl])
		}
		return 0
	}
	return t.slSparse[sl]
}

// latency prices one batch of the given size padded to sl on cluster
// clusterIdx. The fast path is a single indexed load; misses (partial
// batch sizes, first use) fall through to the profile source and fill
// the slot.
func (t *priceTable) latency(clusterIdx, batch, sl int) (float64, error) {
	si := t.slIndex(sl)
	if si == 0 {
		// A padded SL outside the trace's SL set cannot arise from the
		// bundled event loops (the padded SL is some request's SL), but a
		// direct uncached price keeps hypothetical callers correct.
		t.mu.Lock()
		us, err := t.fetch(clusterIdx, batch, sl)
		t.mu.Unlock()
		return us, err
	}
	off := (clusterIdx*t.maxBatch+batch-1)*t.numSL + si - 1
	t.mu.RLock()
	us := t.prices[off]
	t.mu.RUnlock()
	if !math.IsNaN(us) {
		return us, nil
	}
	// Fill misses under the write lock: besides guarding the slot, this
	// serializes all on-demand ProfileSource calls, so sources need not
	// be thread-safe even when replicas advance concurrently.
	t.mu.Lock()
	defer t.mu.Unlock()
	if us = t.prices[off]; !math.IsNaN(us) {
		return us, nil
	}
	us, err := t.fetch(clusterIdx, batch, sl)
	if err != nil {
		return 0, err
	}
	t.prices[off] = us
	return us, nil
}

// decodeLatency prices one decode step of a batch on cluster
// clusterIdx: the forward cost of one new token per sequence. Only
// valid on tables built with withDecode.
func (t *priceTable) decodeLatency(clusterIdx, batch int) (float64, error) {
	off := clusterIdx*t.maxBatch + batch - 1
	t.mu.RLock()
	us := t.decode[off]
	t.mu.RUnlock()
	if !math.IsNaN(us) {
		return us, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fillDecode(clusterIdx, batch)
}

// fillDecode fetches and stores the per-step decode price for one
// (cluster, batch); callers must hold the write lock (or be the
// single-threaded constructor).
func (t *priceTable) fillDecode(clusterIdx, batch int) (float64, error) {
	off := clusterIdx*t.maxBatch + batch - 1
	if us := t.decode[off]; !math.IsNaN(us) {
		return us, nil
	}
	us, err := t.fetch(clusterIdx, batch, decodeSL)
	if err != nil {
		return 0, err
	}
	t.decode[off] = us
	return us, nil
}

// fetch prices one (cluster, batch, SL) through the profile source,
// rejecting non-finite results at the fill boundary.
func (t *priceTable) fetch(clusterIdx, batch, sl int) (float64, error) {
	profiles, err := t.src.EvalProfiles(t.hw, t.clusters[clusterIdx], t.model, batch, []int{sl})
	if err != nil {
		return 0, err
	}
	prof, ok := profiles[sl]
	if !ok {
		return 0, fmt.Errorf("serving: profile source returned no eval profile for batch %d SL %d", batch, sl)
	}
	if err := checkFinite(prof.TimeUS, batch, sl); err != nil {
		return 0, err
	}
	return prof.TimeUS, nil
}
