// Package serving simulates online inference serving: the load-
// dependent regime the paper's offline training and fixed-batch
// inference simulators (Section VII-E) stop short of. Requests arrive
// over time, a batching policy decides when to launch and which queued
// requests to group, a single server executes one batch at a time, and
// every per-batch latency comes from the same analytical cost model —
// through the trainer's ProfileSource seam, so the engine's cross-run
// profile cache prices each unique (batch, padded SL) forward pass
// exactly once per process.
//
// This is where SeqPoint-style sequence-length skew matters most: with
// pad-to-max batching the batch's longest request dictates the whole
// batch's latency, so the SL distribution of the arrival stream shapes
// the p95/p99 latency tail long before the server saturates.
//
// The simulator is a deterministic discrete-event loop: arrivals are a
// pre-generated seeded trace (Poisson or replayed), the event loop is
// strictly sequential, and profiling parallelism only changes how fast
// profiles are computed — never a single output byte.
//
// The arrival side — Request/Trace, the generators and the versioned
// trace file format — lives in internal/workload; the aliases and
// wrappers below keep this package's historical surface intact, so
// simulator call sites and the public facade are untouched by the
// extraction.
package serving

import (
	"io"

	"seqpoint/internal/dataset"
	"seqpoint/internal/workload"
)

// Request is one inference request of an arrival trace.
type Request = workload.Request

// Trace is an arrival-ordered request sequence.
type Trace = workload.Trace

// ErrBadTrace is the typed cause every trace-validation failure wraps;
// see workload.ErrBadTrace.
var ErrBadTrace = workload.ErrBadTrace

// PoissonTrace generates n requests with exponentially distributed
// inter-arrival times at ratePerSec requests per second; see
// workload.PoissonTrace.
func PoissonTrace(c *dataset.Corpus, n int, ratePerSec float64, seed int64) (Trace, error) {
	return workload.PoissonTrace(c, n, ratePerSec, seed)
}

// BurstTrace generates n requests that all arrive at time zero; see
// workload.BurstTrace.
func BurstTrace(c *dataset.Corpus, n int, seed int64) (Trace, error) {
	return workload.BurstTrace(c, n, seed)
}

// ReplayTrace builds a trace from explicit arrival offsets and
// sequence lengths; see workload.ReplayTrace.
func ReplayTrace(name string, arrivalsUS []float64, seqLens []int) (Trace, error) {
	return workload.ReplayTrace(name, arrivalsUS, seqLens)
}

// GenSpec describes one generated multi-tenant workload; see
// workload.GenSpec.
type GenSpec = workload.GenSpec

// Cohort is one tenant class of a generated workload; see
// workload.Cohort.
type Cohort = workload.Cohort

// Pattern shapes a generated arrival process's rate over time; see
// workload.Pattern.
type Pattern = workload.Pattern

// Arrival-pattern kinds accepted by Pattern.Kind.
const (
	// PatternUniform is a homogeneous Poisson process.
	PatternUniform = workload.PatternUniform
	// PatternDiurnal modulates the rate sinusoidally.
	PatternDiurnal = workload.PatternDiurnal
)

// Generate produces a multi-tenant trace — pattern-shaped arrivals,
// weighted cohorts, Zipf tenant popularity, bulk clumps; see
// workload.Generate.
func Generate(spec GenSpec) (Trace, error) {
	return workload.Generate(spec)
}

// TraceFileVersion is the trace file format version WriteTrace emits;
// see workload.TraceVersion.
const TraceFileVersion = workload.TraceVersion

// WriteTrace writes the versioned JSON-lines trace format; see
// workload.WriteTrace.
func WriteTrace(w io.Writer, t Trace) error {
	return workload.WriteTrace(w, t)
}

// ReadTrace parses and fully validates a trace file; see
// workload.ReadTrace.
func ReadTrace(r io.Reader) (Trace, error) {
	return workload.ReadTrace(r)
}

// SaveTrace atomically writes a trace file to path; see
// workload.SaveTrace.
func SaveTrace(path string, t Trace) error {
	return workload.SaveTrace(path, t)
}

// LoadTrace reads and fully validates the trace file at path; see
// workload.LoadTrace.
func LoadTrace(path string) (Trace, error) {
	return workload.LoadTrace(path)
}
