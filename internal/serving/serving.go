// Package serving simulates online inference serving: the load-
// dependent regime the paper's offline training and fixed-batch
// inference simulators (Section VII-E) stop short of. Requests arrive
// over time, a batching policy decides when to launch and which queued
// requests to group, a single server executes one batch at a time, and
// every per-batch latency comes from the same analytical cost model —
// through the trainer's ProfileSource seam, so the engine's cross-run
// profile cache prices each unique (batch, padded SL) forward pass
// exactly once per process.
//
// This is where SeqPoint-style sequence-length skew matters most: with
// pad-to-max batching the batch's longest request dictates the whole
// batch's latency, so the SL distribution of the arrival stream shapes
// the p95/p99 latency tail long before the server saturates.
//
// The simulator is a deterministic discrete-event loop: arrivals are a
// pre-generated seeded trace (Poisson or replayed), the event loop is
// strictly sequential, and profiling parallelism only changes how fast
// profiles are computed — never a single output byte.
package serving

import (
	"fmt"
	"math"
	"math/rand"

	"seqpoint/internal/dataset"
)

// Request is one inference request of an arrival trace.
type Request struct {
	// ID is the request's index in the trace (arrival order).
	ID int
	// ArrivalUS is the arrival time in microseconds from trace start.
	ArrivalUS float64
	// SeqLen is the request's input sequence length.
	SeqLen int
	// DecodeSteps is the request's decode length under the KV-cache
	// model (Spec.KV / FleetSpec.KV); 0 falls back to the configured
	// default, and the field is inert with KV disabled.
	DecodeSteps int
}

// Trace is an arrival-ordered request sequence.
type Trace struct {
	// Name labels the trace in reports.
	Name string
	// Requests are the requests in non-decreasing arrival order.
	Requests []Request
}

// Validate reports whether the trace is well-formed: non-empty, IDs in
// trace order, arrivals non-negative and non-decreasing, SLs positive.
func (t Trace) Validate() error {
	if len(t.Requests) == 0 {
		return fmt.Errorf("serving: trace %q has no requests", t.Name)
	}
	prev := 0.0
	for i, r := range t.Requests {
		if r.ID != i {
			return fmt.Errorf("serving: trace %q request %d has ID %d", t.Name, i, r.ID)
		}
		if r.SeqLen <= 0 {
			return fmt.Errorf("serving: trace %q request %d has sequence length %d", t.Name, i, r.SeqLen)
		}
		if r.DecodeSteps < 0 {
			return fmt.Errorf("serving: trace %q request %d has negative decode steps %d", t.Name, i, r.DecodeSteps)
		}
		if math.IsNaN(r.ArrivalUS) || math.IsInf(r.ArrivalUS, 0) || r.ArrivalUS < 0 {
			return fmt.Errorf("serving: trace %q request %d has invalid arrival %v", t.Name, i, r.ArrivalUS)
		}
		if r.ArrivalUS < prev {
			return fmt.Errorf("serving: trace %q request %d arrives at %v, before request %d at %v",
				t.Name, i, r.ArrivalUS, i-1, prev)
		}
		prev = r.ArrivalUS
	}
	return nil
}

// UniqueSLs returns the distinct sequence lengths of the trace in
// first-arrival order.
func (t Trace) UniqueSLs() []int {
	seen := make(map[int]bool)
	var out []int
	for _, r := range t.Requests {
		if !seen[r.SeqLen] {
			seen[r.SeqLen] = true
			out = append(out, r.SeqLen)
		}
	}
	return out
}

// PoissonTrace generates n requests with exponentially distributed
// inter-arrival times at ratePerSec requests per second, each request's
// sequence length drawn uniformly from the corpus. Everything is
// seeded: the same (corpus, n, rate, seed) yields the same trace.
func PoissonTrace(c *dataset.Corpus, n int, ratePerSec float64, seed int64) (Trace, error) {
	if c == nil || c.Size() == 0 {
		return Trace{}, fmt.Errorf("serving: Poisson trace needs a non-empty corpus")
	}
	if n <= 0 {
		return Trace{}, fmt.Errorf("serving: request count must be positive, got %d", n)
	}
	if ratePerSec <= 0 || math.IsNaN(ratePerSec) || math.IsInf(ratePerSec, 0) {
		return Trace{}, fmt.Errorf("serving: arrival rate must be a positive finite rate, got %v", ratePerSec)
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	t := 0.0
	for i := range reqs {
		t += rng.ExpFloat64() / ratePerSec * 1e6
		reqs[i] = Request{ID: i, ArrivalUS: t, SeqLen: c.Lengths[rng.Intn(c.Size())]}
	}
	return Trace{
		Name:     fmt.Sprintf("poisson(%s, %.4g rps, n=%d)", c.Name, ratePerSec, n),
		Requests: reqs,
	}, nil
}

// BurstTrace generates n requests that all arrive at time zero, with
// sequence lengths drawn uniformly from the corpus — a fully
// backlogged server. Its achieved throughput is the serving capacity
// of a (model, config, policy) triple, the normalizer load sweeps
// express arrival rates against.
func BurstTrace(c *dataset.Corpus, n int, seed int64) (Trace, error) {
	if c == nil || c.Size() == 0 {
		return Trace{}, fmt.Errorf("serving: burst trace needs a non-empty corpus")
	}
	if n <= 0 {
		return Trace{}, fmt.Errorf("serving: request count must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{ID: i, SeqLen: c.Lengths[rng.Intn(c.Size())]}
	}
	return Trace{Name: fmt.Sprintf("burst(%s, n=%d)", c.Name, n), Requests: reqs}, nil
}

// ReplayTrace builds a trace from explicit arrival offsets (in
// microseconds) and sequence lengths — the replayed-production-log
// arrival process. The two slices pair up element-wise.
func ReplayTrace(name string, arrivalsUS []float64, seqLens []int) (Trace, error) {
	if len(arrivalsUS) != len(seqLens) {
		return Trace{}, fmt.Errorf("serving: replay trace %q has %d arrivals but %d sequence lengths",
			name, len(arrivalsUS), len(seqLens))
	}
	reqs := make([]Request, len(arrivalsUS))
	for i := range reqs {
		reqs[i] = Request{ID: i, ArrivalUS: arrivalsUS[i], SeqLen: seqLens[i]}
	}
	tr := Trace{Name: name, Requests: reqs}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}
