package serving

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
)

// parallelCase is one serial-vs-parallel equivalence scenario. Router
// and profile source are built fresh per run (both carry deterministic
// internal state).
type parallelCase struct {
	name     string
	requests int
	rate     float64
	burst    bool
	policy   func() (Policy, error)
	router   func() (Router, error)
	replicas int
	clusters []gpusim.ClusterConfig
	queueCap int
}

func parallelCases() []parallelCase {
	return []parallelCase{
		{
			name: "dynamic_least_unbounded", requests: 600, rate: 2500,
			policy:   func() (Policy, error) { return NewDynamicBatch(8, 1500) },
			router:   func() (Router, error) { return NewLeastOutstanding(), nil },
			replicas: 6,
		},
		{
			name: "fixed_rr_bounded", requests: 500, rate: 6000,
			policy:   func() (Policy, error) { return NewFixedBatch(4) },
			router:   func() (Router, error) { return NewRoundRobin(), nil },
			replicas: 3, queueCap: 5,
		},
		{
			name: "length_po2_hetero", requests: 400, rate: 1800,
			policy: func() (Policy, error) { return NewLengthAware(6) },
			router: func() (Router, error) { return NewPowerOfTwo(11), nil },
			clusters: []gpusim.ClusterConfig{
				gpusim.DefaultCluster(1), gpusim.DefaultCluster(2),
				gpusim.DefaultCluster(1), gpusim.DefaultCluster(4),
			},
			replicas: 4,
		},
		{
			name: "dynamic_jsq_burst", requests: 300, rate: 0, burst: true,
			policy:   func() (Policy, error) { return NewDynamicBatch(16, 800) },
			router:   func() (Router, error) { return NewJSQ(), nil },
			replicas: 5, queueCap: 80,
		},
	}
}

func (c parallelCase) run(t *testing.T, parallelism int) *FleetResult {
	t.Helper()
	lengths := make([]int, 96)
	for i := range lengths {
		lengths[i] = 2 + (i*17)%40
	}
	corpus, err := dataset.Synthetic("par", lengths, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var trace Trace
	if c.burst {
		trace, err = BurstTrace(corpus, c.requests, 33)
	} else {
		trace, err = PoissonTrace(corpus, c.requests, c.rate, 33)
	}
	if err != nil {
		t.Fatal(err)
	}
	policy, err := c.policy()
	if err != nil {
		t.Fatal(err)
	}
	router, err := c.router()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateFleet(FleetSpec{
		Model:       models.NewGNMT(),
		Trace:       trace,
		Policy:      policy,
		Router:      router,
		Replicas:    c.replicas,
		Clusters:    c.clusters,
		QueueCap:    c.queueCap,
		Parallelism: parallelism,
		Profiles:    &stubSource{},
	}, gpusim.VegaFE())
	if err != nil {
		t.Fatalf("SimulateFleet(parallelism=%d): %v", parallelism, err)
	}
	return res
}

// TestParallelFleetEquivalence pins the tentpole contract: replica
// advancement at any FleetSpec.Parallelism produces byte-identical
// summaries and identical per-request metrics to the serial loop,
// across routers, policies, admission bounds, heterogeneous clusters,
// and same-instant burst arrivals.
func TestParallelFleetEquivalence(t *testing.T) {
	parallelisms := []int{2, 4, runtime.GOMAXPROCS(0) + 1}
	for _, c := range parallelCases() {
		t.Run(c.name, func(t *testing.T) {
			serial := c.run(t, 1)
			wantSummary, err := serial.Summary().Serialize()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range parallelisms {
				got := c.run(t, p)
				gotSummary, err := got.Summary().Serialize()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotSummary, wantSummary) {
					t.Fatalf("parallelism %d summary diverged from serial:\n%s\nvs\n%s", p, gotSummary, wantSummary)
				}
				if !reflect.DeepEqual(serial.Requests, got.Requests) {
					t.Fatalf("parallelism %d per-request metrics diverged from serial", p)
				}
				if !reflect.DeepEqual(serial.Rejections, got.Rejections) {
					t.Fatalf("parallelism %d rejections diverged from serial", p)
				}
				if !reflect.DeepEqual(serial.ReplicaStats, got.ReplicaStats) {
					t.Fatalf("parallelism %d replica stats diverged from serial", p)
				}
				if serial.BusyUS != got.BusyUS {
					t.Fatalf("parallelism %d BusyUS %v != serial %v (float accumulation order leaked)",
						p, got.BusyUS, serial.BusyUS)
				}
			}
		})
	}
}

// TestParallelismValidation pins the spec-level contract for the knob.
func TestParallelismValidation(t *testing.T) {
	policy, err := NewFixedBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	lengths := []int{3, 5, 7}
	corpus, err := dataset.Synthetic("pv", lengths, 100)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := BurstTrace(corpus, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := FleetSpec{
		Model:       models.NewGNMT(),
		Trace:       trace,
		Policy:      policy,
		Router:      NewRoundRobin(),
		Replicas:    2,
		Parallelism: -1,
		Profiles:    &stubSource{},
	}
	if _, err := SimulateFleet(spec, gpusim.VegaFE()); err == nil {
		t.Fatal("negative parallelism accepted")
	}

	// An autoscaled fleet silently takes the serial path: the scaler
	// couples every replica at every event. The knob must not change a
	// byte.
	auto := spec
	auto.Parallelism = 4
	auto.Autoscale = &AutoscaleConfig{Min: 1, Max: 2, UpDepth: 2, DownDepth: 0.5, CooldownUS: 100}
	auto.Replicas = 1
	autoRes, err := SimulateFleet(auto, gpusim.VegaFE())
	if err != nil {
		t.Fatalf("autoscaled parallel spec: %v", err)
	}
	serial := auto
	serial.Parallelism = 0
	serial.Router = NewRoundRobin()
	serialRes, err := SimulateFleet(serial, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	wantB, _ := serialRes.Summary().Serialize()
	gotB, _ := autoRes.Summary().Serialize()
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("autoscaled fleet changed bytes under Parallelism:\n%s\nvs\n%s", gotB, wantB)
	}
}

// TestTakeBatchScratch pins the scratch-based takeBatch against the
// validation contract: out-of-range, duplicate, oversized and empty
// picks fail; valid picks extract in queue order and preserve the
// remaining queue's order.
func TestTakeBatchScratch(t *testing.T) {
	mkQueue := func() []Request {
		q := make([]Request, 6)
		for i := range q {
			q[i] = Request{ID: i, SeqLen: 10 + i}
		}
		return q
	}
	var scratch []int
	var dst []Request

	queue := mkQueue()
	batch, scratch, err := takeBatch(dst[:0], &queue, []int{4, 0, 2}, scratch, 8, "test")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(batch[0].ID, batch[1].ID, batch[2].ID) != "0 2 4" {
		t.Fatalf("batch order %v, want IDs 0 2 4", batch)
	}
	if fmt.Sprint(queue[0].ID, queue[1].ID, queue[2].ID) != "1 3 5" || len(queue) != 3 {
		t.Fatalf("remaining queue %v, want IDs 1 3 5", queue)
	}

	for name, pick := range map[string][]int{
		"empty":      {},
		"dup":        {1, 1},
		"oob":        {0, 9},
		"neg":        {-1},
		"oversized":  {0, 1, 2},
		"dup_spread": {2, 0, 2},
	} {
		queue := mkQueue()
		max := 8
		if name == "oversized" {
			max = 2
		}
		if _, _, err := takeBatch(batch[:0], &queue, pick, scratch, max, "test"); err == nil {
			t.Fatalf("%s pick accepted", name)
		}
	}
}
