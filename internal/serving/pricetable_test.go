package serving

import (
	"errors"
	"math"
	"testing"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/profiler"
)

// nanSource prices one sequence length as NaN and everything else
// normally: the shape of a profiler bug the price table must refuse
// rather than serve. Before the finiteness check, a NaN profile was
// indistinguishable from the table's own unfilled-slot sentinel, so it
// flowed straight into latencies and poisoned every percentile
// downstream.
type nanSource struct {
	badSL int
	bad   float64
}

func (s *nanSource) TrainProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int) (map[int]profiler.IterationProfile, error) {
	return s.EvalProfiles(hw, cl, m, batch, seqLens)
}

func (s *nanSource) EvalProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int) (map[int]profiler.IterationProfile, error) {
	out := make(map[int]profiler.IterationProfile, len(seqLens))
	for _, sl := range seqLens {
		us := float64(sl) * 100
		if sl == s.badSL {
			us = s.bad
		}
		out[sl] = profiler.IterationProfile{SeqLen: sl, Batch: batch, TimeUS: us}
	}
	return out, nil
}

func TestPriceTableRejectsNonFinitePrices(t *testing.T) {
	fixed, _ := NewFixedBatch(2)
	for name, bad := range map[string]float64{
		"NaN":  math.NaN(),
		"+Inf": math.Inf(1),
	} {
		t.Run(name, func(t *testing.T) {
			_, err := Simulate(Spec{
				Model:    models.NewGNMT(),
				Trace:    replay(t, []float64{0, 5}, []int{3, 4}),
				Policy:   fixed,
				Profiles: &nanSource{badSL: 4, bad: bad},
			}, gpusim.VegaFE())
			if !errors.Is(err, ErrNonFinitePrice) {
				t.Fatalf("Simulate error = %v, want ErrNonFinitePrice", err)
			}
		})
	}
}

// The same guard covers the decode row: a KV-enabled run prices decode
// steps at SL 1, so a non-finite SL-1 profile must surface as the
// typed error, not a NaN timeline.
func TestPriceTableRejectsNonFiniteDecodePrice(t *testing.T) {
	fixed, _ := NewFixedBatch(1)
	_, err := Simulate(Spec{
		Model:    models.NewGNMT(),
		Trace:    replay(t, []float64{0}, []int{3}),
		Policy:   fixed,
		Profiles: &nanSource{badSL: decodeSL, bad: math.NaN()},
		KV:       &KVConfig{CapacityBytes: 1e9, DecodeSteps: 2},
	}, gpusim.VegaFE())
	if !errors.Is(err, ErrNonFinitePrice) {
		t.Fatalf("Simulate error = %v, want ErrNonFinitePrice", err)
	}
}
