package serving

import (
	"fmt"
	"math"
	"sort"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/trainer"
)

// This file generalizes the single-queue serving simulator (sim.go) to
// a fleet: N replicas, each running the PR-4 event loop's semantics,
// fronted by a routing policy, a bounded admission queue per replica,
// and an optional reactive autoscaler. A 1-replica fleet with
// round-robin routing and an unbounded queue reproduces Simulate
// byte-for-byte (see FleetResult.AsServing and the property test) —
// the fleet layer is a strict generalization, not a parallel
// implementation drifting on its own.
//
// The event loop is indexed, not scanned: replica wake/finish times
// live in a min-heap (fleetheap.go) and policy re-consults in a dirty
// set, so one event costs O(log R) instead of O(R). Batch latencies
// come from a flat price table (pricetable.go). Replicas can also be
// advanced concurrently between routing barriers (fleetparallel.go)
// when FleetSpec.Parallelism asks for it; every path produces the
// same bytes.

// MaxFleetReplicas bounds the modeled fleet size; beyond it the O(N)
// per-arrival routing scan stops being the simulation's cheap part.
const MaxFleetReplicas = 1024

// AutoscaleConfig is the reactive autoscaler: scale up when the mean
// queue depth per live replica exceeds UpDepth, down when it falls
// below DownDepth, at most one action per CooldownUS of simulated
// time. Scale-down only ever retires an idle replica with an empty
// queue, so no admitted request is abandoned.
type AutoscaleConfig struct {
	// Min and Max bound the live replica count.
	Min, Max int
	// UpDepth and DownDepth are mean-queued-per-live-replica
	// thresholds; UpDepth must exceed DownDepth so the scaler cannot
	// oscillate within one evaluation.
	UpDepth, DownDepth float64
	// CooldownUS is the minimum simulated time between scale actions.
	CooldownUS float64
}

// Validate reports whether the autoscaler configuration is usable.
func (a AutoscaleConfig) Validate() error {
	switch {
	case a.Min < 1:
		return fmt.Errorf("serving: autoscale min %d, want >= 1", a.Min)
	case a.Max < a.Min:
		return fmt.Errorf("serving: autoscale max %d below min %d", a.Max, a.Min)
	case a.Max > MaxFleetReplicas:
		return fmt.Errorf("serving: autoscale max %d exceeds the %d-replica limit", a.Max, MaxFleetReplicas)
	case math.IsNaN(a.UpDepth) || math.IsInf(a.UpDepth, 0) || a.UpDepth <= 0:
		return fmt.Errorf("serving: autoscale up-depth must be a positive finite depth, got %v", a.UpDepth)
	case math.IsNaN(a.DownDepth) || a.DownDepth < 0 || a.DownDepth >= a.UpDepth:
		return fmt.Errorf("serving: autoscale down-depth must be in [0, up-depth), got %v", a.DownDepth)
	case math.IsNaN(a.CooldownUS) || math.IsInf(a.CooldownUS, 0) || a.CooldownUS < 0:
		return fmt.Errorf("serving: autoscale cooldown must be a finite non-negative duration, got %v", a.CooldownUS)
	}
	return nil
}

// FleetSpec describes one multi-replica serving simulation.
type FleetSpec struct {
	// Model is the network every replica serves.
	Model models.Model
	// Trace is the arrival process offered to the fleet.
	Trace Trace
	// Policy is the per-replica batching policy (shared).
	Policy Policy
	// Router assigns each arrival to a replica.
	Router Router
	// Replicas is the replica count — with autoscaling, the initial
	// live count (within [Autoscale.Min, Autoscale.Max]).
	Replicas int
	// Clusters optionally makes the fleet heterogeneous: one
	// data-parallel gpusim.ClusterConfig per allocated replica (length
	// Replicas, or Autoscale.Max when autoscaling). Empty means every
	// replica is a single GPU.
	Clusters []gpusim.ClusterConfig
	// QueueCap bounds each replica's admission queue; arrivals finding
	// every live replica full are rejected. 0 means unbounded.
	QueueCap int
	// Autoscale enables the reactive autoscaler; nil keeps the fleet
	// size fixed at Replicas.
	Autoscale *AutoscaleConfig
	// KV enables the per-replica KV-cache capacity model with
	// prefill/decode-split pricing; nil keeps the compute-only fleet,
	// byte-identical to the pre-KV simulator.
	KV *KVConfig
	// Disagg splits the fleet into a prefill pool and a decode pool
	// joined by a handoff queue (requires KV); nil keeps the aggregated
	// topology where every replica runs both phases.
	Disagg *DisaggConfig
	// Parallelism > 1 advances independent replicas concurrently
	// between routing barriers, producing byte-identical results to
	// the serial loop (0 and 1 mean serial). Autoscaled fleets always
	// run serially: the scaler reads every replica's queue at every
	// event, so there is no independent stretch to parallelize.
	Parallelism int
	// Profiles overrides the profile source; nil uses the process
	// default (the shared engine when internal/engine is linked).
	Profiles trainer.ProfileSource
}

// allocated is the number of replica slots the simulation provisions:
// the autoscaler's Max when autoscaling, Replicas otherwise.
func (s FleetSpec) allocated() int {
	if s.Autoscale != nil {
		return s.Autoscale.Max
	}
	return s.Replicas
}

// Validate reports whether the spec is complete and consistent.
func (s FleetSpec) Validate() error {
	switch {
	case s.Model == nil:
		return fmt.Errorf("serving: fleet spec needs a model")
	case s.Policy == nil:
		return fmt.Errorf("serving: fleet spec needs a batching policy")
	case s.Policy.MaxBatch() <= 0:
		return fmt.Errorf("serving: policy %q has non-positive max batch", s.Policy.Name())
	case s.Router == nil:
		return fmt.Errorf("serving: fleet spec needs a router")
	case s.Replicas < 1:
		return fmt.Errorf("serving: fleet needs at least one replica, got %d", s.Replicas)
	case s.Replicas > MaxFleetReplicas:
		return fmt.Errorf("serving: %d replicas exceeds the %d-replica limit", s.Replicas, MaxFleetReplicas)
	case s.QueueCap < 0:
		return fmt.Errorf("serving: queue capacity must be non-negative, got %d", s.QueueCap)
	case s.Parallelism < 0:
		return fmt.Errorf("serving: parallelism must be non-negative, got %d", s.Parallelism)
	}
	if s.Autoscale != nil {
		if err := s.Autoscale.Validate(); err != nil {
			return err
		}
		if s.Replicas < s.Autoscale.Min || s.Replicas > s.Autoscale.Max {
			return fmt.Errorf("serving: initial replicas %d outside autoscale bounds [%d, %d]",
				s.Replicas, s.Autoscale.Min, s.Autoscale.Max)
		}
	}
	if s.KV != nil {
		if err := s.KV.Validate(); err != nil {
			return err
		}
	} else if s.Router.Name() == RoutingKV {
		return fmt.Errorf("serving: %q routing needs the KV model enabled — without it every replica reports zero cache pressure", RoutingKV)
	}
	if s.Disagg != nil {
		if err := s.Disagg.Validate(); err != nil {
			return err
		}
		switch {
		case s.KV == nil:
			return fmt.Errorf("serving: a disaggregated fleet needs the KV model — the prefill/decode split is what the pools disaggregate")
		case s.Autoscale != nil:
			return fmt.Errorf("serving: disaggregated fleets do not autoscale")
		case s.Replicas != s.Disagg.PrefillReplicas+s.Disagg.DecodeReplicas:
			return fmt.Errorf("serving: %d replicas but disagg pools sum to %d (prefill %d + decode %d)",
				s.Replicas, s.Disagg.PrefillReplicas+s.Disagg.DecodeReplicas,
				s.Disagg.PrefillReplicas, s.Disagg.DecodeReplicas)
		}
	}
	if len(s.Clusters) > 0 {
		if len(s.Clusters) != s.allocated() {
			return fmt.Errorf("serving: %d per-replica clusters for %d allocated replicas",
				len(s.Clusters), s.allocated())
		}
		for i, cl := range s.Clusters {
			if err := cl.Validate(); err != nil {
				return fmt.Errorf("serving: replica %d cluster: %w", i, err)
			}
		}
	}
	return s.Trace.Validate()
}

// RejectReasonQueueFull is the only rejection the bundled admission
// controller produces: every live replica's bounded queue was full.
const RejectReasonQueueFull = "queue_full"

// Rejection records one request the fleet refused to admit.
type Rejection struct {
	// ID is the request's trace index.
	ID int `json:"id"`
	// ArrivalUS is when the request arrived.
	ArrivalUS float64 `json:"arrival_us"`
	// SeqLen is the request's sequence length.
	SeqLen int `json:"seqlen"`
	// Reason is the typed rejection cause (RejectReasonQueueFull).
	Reason string `json:"reason"`
	// Tenant is the request's tenant label; empty (and omitted) on
	// single-tenant traces.
	Tenant string `json:"tenant,omitempty"`
}

// ReplicaStats is one replica's share of a fleet run.
type ReplicaStats struct {
	// Replica is the replica's fleet index.
	Replica int `json:"replica"`
	// GPUs is the replica's data-parallel width.
	GPUs int `json:"gpus"`
	// Served and Batches count the requests and batches the replica
	// completed.
	Served  int `json:"served"`
	Batches int `json:"batches"`
	// BusyUS is the replica's summed batch execution time; LiveUS the
	// simulated time it spent active (equal to the run length on fixed
	// fleets).
	BusyUS float64 `json:"busy_us"`
	LiveUS float64 `json:"live_us"`
	// Preemptions and KVPeakBytes are the replica's share of the KV
	// model's activity; always 0 (and omitted) with KV disabled.
	Preemptions int     `json:"preemptions,omitempty"`
	KVPeakBytes float64 `json:"kv_peak_bytes,omitempty"`
}

// FleetResult is one fleet simulation's full outcome.
type FleetResult struct {
	// Config is the per-GPU hardware configuration.
	Config gpusim.Config
	// Routing and Policy name the router and batching policy.
	Routing string
	Policy  string
	// Replicas is the allocated replica count; QueueCap the admission
	// bound (0 = unbounded).
	Replicas int
	QueueCap int
	// Requests holds every served request's metric, ordered by trace
	// ID; rejected requests appear in Rejections instead.
	Requests []RequestMetric
	// Rejections lists refused requests in arrival order.
	Rejections []Rejection
	// ReplicaStats holds per-replica roll-ups, indexed by replica.
	ReplicaStats []ReplicaStats
	// Batches and BusyUS aggregate over replicas; MakespanUS is the
	// last batch completion.
	Batches    int
	BusyUS     float64
	MakespanUS float64
	// ReplicaSeconds integrates live replicas over simulated time: the
	// fleet's cost proxy (a fixed N-replica fleet accrues N × run
	// length / 1e6).
	ReplicaSeconds float64
	// ScaleUps, ScaleDowns and PeakReplicas summarize autoscaler
	// activity (0/0/Replicas on fixed fleets... PeakReplicas is the
	// maximum simultaneously live count).
	ScaleUps     int
	ScaleDowns   int
	PeakReplicas int
	// KV is the cache model's roll-up; nil when FleetSpec.KV was nil.
	KV *KVRunStats
	// Disagg labels a disaggregated run's topology
	// ("prefill=P,decode=D"); empty on aggregated fleets.
	Disagg string
}

// fleetReplica is one replica's mutable event-loop state.
type fleetReplica struct {
	id         int
	cluster    gpusim.ClusterConfig
	clusterIdx int // index into the price table's distinct clusters
	live       bool

	queue     []Request
	busy      bool
	startedAt float64
	doneAt    float64
	inflight  []Request // reused batch buffer; len 0 when idle
	paddedSL  int

	// wakeAt is the policy's requested re-consult deadline (+Inf when
	// it only wants arrival/completion wake-ups); needConsult forces a
	// consult at the next dispatch pass regardless of the deadline.
	wakeAt      float64
	needConsult bool
	// consults counts policy consultations since the replica last
	// dispatched or grew its queue, bounding runaway wait loops.
	consults int

	// pickScratch is the replica-owned takeBatch index scratch, so
	// concurrent replica advancement never shares sort buffers.
	pickScratch []int

	// KV-model state, all replica-local (zero with KV off):
	// launchTimes/launchWaves describe the in-flight busy period,
	// kvQueued/kvInflight the router-visible cache pressure, and
	// preempts/kvPeak the per-replica roll-ups summed at finalize.
	launchTimes []kvReqTime
	launchWaves int
	kvQueued    float64
	kvInflight  float64
	kvPeak      float64
	preempts    int

	served, batches int
	busyUS          float64
	liveUS          float64
	liveSince       float64
}

// SimulateFleet runs the arrival trace against a fleet of replicas.
// The event loop is fully deterministic: replica events pop from the
// heap in (time, replica ID) order, arrivals are routed in trace
// order, and the only randomness (po2 routing) is seeded. Profiling
// parallelism — and replica-advancement parallelism
// (FleetSpec.Parallelism) — changes how fast the answer is computed,
// never an output byte. Each distinct replica cluster prefetches the
// trace's unique SLs at the policy's max batch in one bulk
// ProfileSource call.
func SimulateFleet(spec FleetSpec, hw gpusim.Config) (*FleetResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	if spec.Disagg != nil {
		return simulateDisagg(spec, hw)
	}
	src := spec.Profiles
	if src == nil {
		src = trainer.DefaultProfileSource()
	}
	maxBatch := spec.Policy.MaxBatch()
	allocated := spec.allocated()
	var kv *kvState
	if spec.KV != nil {
		kv = newKVState(spec.KV, spec.Model)
	}

	// Distinct clusters in first-occurrence order index the price
	// table (and fix the prefetch call order, which engine caching can
	// observe).
	var clusters []gpusim.ClusterConfig
	clusterIdx := make(map[gpusim.ClusterConfig]int)
	replicas := make([]*fleetReplica, allocated)
	for i := range replicas {
		cl := gpusim.SingleGPU()
		if len(spec.Clusters) > 0 {
			cl = spec.Clusters[i].Normalized()
		}
		ci, ok := clusterIdx[cl]
		if !ok {
			ci = len(clusters)
			clusters = append(clusters, cl)
			clusterIdx[cl] = ci
		}
		replicas[i] = &fleetReplica{id: i, cluster: cl, clusterIdx: ci, live: i < spec.Replicas, wakeAt: math.Inf(1)}
	}

	prices, err := newPriceTable(src, hw, spec.Model, maxBatch, clusters, spec.Trace.UniqueSLs(), kv != nil)
	if err != nil {
		return nil, err
	}

	f := &fleetRun{
		spec:     spec,
		replicas: replicas,
		prices:   prices,
		maxBatch: maxBatch,
		kv:       kv,
		res: &FleetResult{
			Config:       hw,
			Routing:      spec.Router.Name(),
			Policy:       spec.Policy.Name(),
			Replicas:     allocated,
			QueueCap:     spec.QueueCap,
			PeakReplicas: spec.Replicas,
		},
		heap:        newReplicaHeap(allocated),
		inDirty:     make([]bool, allocated),
		viewScratch: make([]ReplicaView, allocated),
		served:      make([]RequestMetric, len(spec.Trace.Requests)),
		isServed:    make([]bool, len(spec.Trace.Requests)),
		lastScaleAt: math.Inf(-1),
	}
	if err := f.run(); err != nil {
		return nil, err
	}
	return f.res, nil
}

// fleetRun is the in-progress event loop state.
type fleetRun struct {
	spec     FleetSpec
	replicas []*fleetReplica
	prices   *priceTable
	maxBatch int
	kv       *kvState // nil = KV model off (the pre-KV code path)
	res      *FleetResult

	clock float64
	next  int // next trace index to route
	done  int // served + rejected

	// heap indexes each replica's next self-generated event (batch
	// completion or armed wake deadline); dirty lists replicas owing a
	// policy consult, deduped by inDirty.
	heap      *replicaHeap
	dirty     []int
	inDirty   []bool
	busyCount int

	// viewScratch is the reused router-snapshot buffer; dlogScratch
	// the reused barrier-merge dispatch log (parallel rounds only).
	viewScratch []ReplicaView
	dlogScratch []dispatchRec

	served      []RequestMetric
	isServed    []bool
	lastScaleAt float64
}

func (f *fleetRun) run() error {
	trace := f.spec.Trace.Requests
	if f.roundWorkers() > 1 {
		if err := f.runRounds(); err != nil {
			return err
		}
	}
	for f.done < len(trace) {
		if err := f.dispatchDirty(); err != nil {
			return err
		}
		t := f.nextArrivalUS()
		if m := f.heap.min(); m < t {
			t = m
		}
		if math.IsInf(t, 1) {
			// Unreachable for contract-abiding policies: queued work
			// always has a dispatch or wake path, and un-routed arrivals
			// are themselves events.
			return fmt.Errorf("serving: fleet stalled at %v with %d of %d requests unresolved",
				f.clock, len(trace)-f.done, len(trace))
		}
		f.clock = t
		f.drainDue()
		if err := f.routeArrivals(); err != nil {
			return err
		}
		f.autoscale()
	}
	// Retire live-time integrals at the end of the run.
	end := f.endTime()
	for _, r := range f.replicas {
		if r.live {
			r.liveUS += end - r.liveSince
		}
	}
	f.finalize()
	return nil
}

// endTime is the instant the run stops accruing replica-seconds: the
// later of the last batch completion and the last processed event.
func (f *fleetRun) endTime() float64 {
	if f.res.MakespanUS > f.clock {
		return f.res.MakespanUS
	}
	return f.clock
}

// nextArrivalUS is the next un-routed arrival's time (+Inf when the
// trace is drained) — the same horizon the single-queue loop hands its
// policy.
func (f *fleetRun) nextArrivalUS() float64 {
	if f.next < len(f.spec.Trace.Requests) {
		return f.spec.Trace.Requests[f.next].ArrivalUS
	}
	return math.Inf(1)
}

// markDirty queues replica id for a policy consult at the next
// dispatch pass.
func (f *fleetRun) markDirty(id int) {
	if !f.inDirty[id] {
		f.inDirty[id] = true
		f.dirty = append(f.dirty, id)
	}
}

// refreshKey re-indexes replica r's next self-generated event in the
// heap: its batch completion when busy, its armed wake deadline when
// idle with queued work, nothing otherwise.
func (f *fleetRun) refreshKey(r *fleetReplica) {
	key := math.Inf(1)
	if r.live {
		if r.busy {
			key = r.doneAt
		} else if len(r.queue) > 0 {
			key = r.wakeAt
		}
	}
	f.heap.update(r.id, key)
}

// dispatchDirty consults the batching policy for every dirty idle live
// replica with queued work, in replica-ID order — the indexed
// equivalent of scanning the whole fleet for due consults.
func (f *fleetRun) dispatchDirty() error {
	if len(f.dirty) == 0 {
		return nil
	}
	sort.Ints(f.dirty)
	nextArrival := f.nextArrivalUS()
	for _, id := range f.dirty {
		f.inDirty[id] = false
		r := f.replicas[id]
		if !r.live || r.busy || len(r.queue) == 0 {
			continue
		}
		for r.needConsult || f.clock >= r.wakeAt {
			d := f.spec.Policy.Decide(r.queue, f.clock, nextArrival)
			if d.Dispatch {
				if err := f.launch(r, d.Pick); err != nil {
					return err
				}
				break
			}
			r.needConsult = false
			wake := math.Min(d.WaitUntilUS, nextArrival)
			if math.IsInf(wake, 1) && f.busyCount == 0 {
				return fmt.Errorf("serving: policy %q refused to dispatch with no future event (replica %d, queue %d, clock %v)",
					f.spec.Policy.Name(), r.id, len(r.queue), f.clock)
			}
			if !math.IsInf(d.WaitUntilUS, 1) && d.WaitUntilUS <= f.clock {
				return fmt.Errorf("serving: policy %q asked to wait until the past (%v at clock %v)",
					f.spec.Policy.Name(), d.WaitUntilUS, f.clock)
			}
			r.wakeAt = d.WaitUntilUS
			if r.consults++; r.consults > f.maxBatch+policyConsultSlack {
				return fmt.Errorf("serving: policy %q consulted %d times on replica %d without dispatching",
					f.spec.Policy.Name(), r.consults, r.id)
			}
			if f.clock < r.wakeAt {
				break // deadline armed; re-consult when it arrives
			}
		}
		f.refreshKey(r)
	}
	f.dirty = f.dirty[:0]
	return nil
}

// launch prices and starts one batch on r at the current clock.
func (f *fleetRun) launch(r *fleetReplica, pick []int) error {
	lat, err := f.startBatch(r, pick, f.clock)
	if err != nil {
		return err
	}
	f.res.BusyUS += lat
	f.busyCount++
	return nil
}

// startBatch moves the policy's pick into r's in-flight batch at time
// now and prices its busy period — a single pad-to-max price on the
// compute-only path, a prefill/decode wave plan under the KV model
// (which may evict part of the pick back to the queue). Every effect
// is replica-local; callers account the global busy time and busy
// count in their own (serial or barrier-merged) order.
func (f *fleetRun) startBatch(r *fleetReplica, pick []int, now float64) (float64, error) {
	batch, scratch, err := takeBatch(r.inflight, &r.queue, pick, r.pickScratch, f.maxBatch, f.spec.Policy.Name())
	r.pickScratch = scratch
	if err != nil {
		return 0, err
	}
	r.inflight = batch
	var lat float64
	if f.kv == nil {
		paddedSL := 0
		for _, q := range batch {
			if q.SeqLen > paddedSL {
				paddedSL = q.SeqLen
			}
		}
		if lat, err = f.prices.latency(r.clusterIdx, len(batch), paddedSL); err != nil {
			return 0, err
		}
		r.paddedSL = paddedSL
	} else {
		plan, times, err := f.kv.plan(f.prices, r.clusterIdx, batch, r.launchTimes)
		r.launchTimes = times
		if err != nil {
			return 0, err
		}
		if plan.keep < len(batch) {
			// Eviction: the displaced suffix rejoins the queue front so
			// recomputation does not also mean starvation.
			r.queue = prependRequests(r.queue, batch[plan.keep:])
			r.inflight = batch[:plan.keep]
		}
		lat = plan.totalLat
		r.launchWaves = plan.waves
		r.preempts += plan.preempts
		if plan.peak > r.kvPeak {
			r.kvPeak = plan.peak
		}
		// The launched requests' cache moves from queued to in-flight
		// pressure; evicted ones stay counted in the queue.
		r.kvQueued -= plan.keptKV
		r.kvInflight = plan.keptKV
	}
	r.busy = true
	r.startedAt = now
	r.doneAt = now + lat
	// Accumulate the priced latency itself, in dispatch order — not
	// doneAt-startedAt, whose float rounding would break the byte-exact
	// equivalence with the single-queue loop.
	r.busyUS += lat
	r.wakeAt = math.Inf(1)
	r.needConsult = false
	r.consults = 0
	return lat, nil
}

// drainDue pops every replica event at or before the clock: batch
// completions retire immediately, reached wake deadlines become dirty
// consults. Equal-time events pop in replica-ID order.
func (f *fleetRun) drainDue() {
	for len(f.heap.heap) > 0 {
		id := f.heap.heap[0]
		if f.heap.keys[id] > f.clock {
			break
		}
		r := f.replicas[id]
		if r.busy {
			f.completeReplica(r)
			f.refreshKey(r)
		} else {
			// A reached wake deadline becomes a dirty consult; the
			// replica keeps its (now past) deadline until the consult
			// re-arms it, so drop the heap slot rather than re-keying.
			r.needConsult = true
			f.markDirty(id)
			f.heap.update(id, math.Inf(1))
		}
	}
}

// completeReplica retires r's in-flight batch at the clock, recording
// per-request metrics.
func (f *fleetRun) completeReplica(r *fleetReplica) {
	n, waves := f.retireBatch(r)
	f.done += n
	f.res.Batches += waves
	if r.doneAt > f.res.MakespanUS {
		f.res.MakespanUS = r.doneAt
	}
	f.busyCount--
	if len(r.queue) > 0 {
		r.needConsult = true
		f.markDirty(r.id)
	} else {
		r.needConsult = false
	}
}

// retireBatch writes r's completed per-request metrics and resets its
// in-flight state, returning the request count and the number of
// priced batches the busy period contained (capacity waves under the
// KV model, 1 otherwise). Every effect is replica-local or a disjoint
// per-request slot write, so the serial and parallel completion paths
// share it.
func (f *fleetRun) retireBatch(r *fleetReplica) (n, waves int) {
	if f.kv == nil {
		for _, q := range r.inflight {
			f.served[q.ID] = RequestMetric{
				ID:        q.ID,
				SeqLen:    q.SeqLen,
				ArrivalUS: q.ArrivalUS,
				StartUS:   r.startedAt,
				DoneUS:    r.doneAt,
				BatchSize: len(r.inflight),
				PaddedSL:  r.paddedSL,
				Replica:   r.id,
				Tenant:    q.Tenant,
			}
			f.isServed[q.ID] = true
		}
		waves = 1
	} else {
		for i, q := range r.inflight {
			t := r.launchTimes[i]
			f.served[q.ID] = RequestMetric{
				ID:        q.ID,
				SeqLen:    q.SeqLen,
				ArrivalUS: q.ArrivalUS,
				StartUS:   r.startedAt + t.startOff,
				FirstUS:   r.startedAt + t.firstOff,
				DoneUS:    r.startedAt + t.doneOff,
				BatchSize: t.batch,
				PaddedSL:  t.paddedSL,
				Replica:   r.id,
				Tenant:    q.Tenant,
			}
			f.isServed[q.ID] = true
		}
		waves = r.launchWaves
		r.kvInflight = 0
	}
	n = len(r.inflight)
	r.served += n
	r.batches += waves
	r.busy = false
	r.inflight = r.inflight[:0]
	return n, waves
}

// routeArrivals admits every arrival at or before the clock, in trace
// order: the router picks among live replicas with queue room; when
// none has room the request is rejected. Under the KV model a request
// whose own cache footprint exceeds the capacity is rejected outright
// (no replica could ever serve it), and a router that returns an
// ineligible replica fails the run with ErrBadRoute. The fleet
// snapshot is built once per pass in the reused scratch buffer and
// updated in place as arrivals land.
func (f *fleetRun) routeArrivals() error {
	trace := f.spec.Trace.Requests
	var (
		views    []ReplicaView
		eligible int
	)
	for f.next < len(trace) && trace[f.next].ArrivalUS <= f.clock {
		req := trace[f.next]
		f.next++
		if f.kv != nil && f.kv.peakBytes(req) > f.kv.capacity {
			f.res.Rejections = append(f.res.Rejections, Rejection{
				ID: req.ID, ArrivalUS: req.ArrivalUS, SeqLen: req.SeqLen, Reason: RejectReasonKVCapacity, Tenant: req.Tenant,
			})
			f.done++
			continue
		}
		if views == nil {
			views, eligible = f.views()
		}
		if eligible == 0 {
			f.res.Rejections = append(f.res.Rejections, Rejection{
				ID: req.ID, ArrivalUS: req.ArrivalUS, SeqLen: req.SeqLen, Reason: RejectReasonQueueFull, Tenant: req.Tenant,
			})
			f.done++
			continue
		}
		id := f.spec.Router.Route(req, views)
		if id < 0 || id >= len(f.replicas) || !views[id].eligible() {
			return fmt.Errorf("%w: router %q picked replica %d for request %d at %v with %d eligible replicas",
				ErrBadRoute, f.spec.Router.Name(), id, req.ID, req.ArrivalUS, eligible)
		}
		r := f.replicas[id]
		r.queue = append(r.queue, req)
		r.needConsult = true
		r.consults = 0
		f.markDirty(id)
		// Only the routed replica's view changed; update it in place.
		views[id].Queued++
		if f.kv != nil {
			need := f.kv.peakBytes(req)
			r.kvQueued += need
			views[id].KVBytes += need
		}
		if f.spec.QueueCap != 0 && len(r.queue) >= f.spec.QueueCap {
			if views[id].eligible() {
				eligible--
			}
			views[id].HasRoom = false
		}
	}
	if f.next == len(trace) {
		// Trace drained: policies waiting for more arrivals must be
		// re-consulted so partial batches flush.
		for _, r := range f.replicas {
			if r.live && !r.busy && len(r.queue) > 0 {
				r.needConsult = true
				f.markDirty(r.id)
			}
		}
	}
	return nil
}

// views snapshots the fleet for the router into the reused scratch
// buffer and counts eligible replicas. The returned slice is only
// valid until the next call.
func (f *fleetRun) views() ([]ReplicaView, int) {
	views := f.viewScratch
	eligible := 0
	for i, r := range f.replicas {
		views[i] = ReplicaView{
			ID:       i,
			Live:     r.live,
			Queued:   len(r.queue),
			InFlight: len(r.inflight),
			HasRoom:  f.spec.QueueCap == 0 || len(r.queue) < f.spec.QueueCap,
		}
		if f.kv != nil {
			views[i].KVBytes = r.kvQueued + r.kvInflight
		}
		if views[i].eligible() {
			eligible++
		}
	}
	return views, eligible
}

// autoscale evaluates the reactive scaler at the current event: at
// most one action per evaluation, gated by the cooldown.
func (f *fleetRun) autoscale() {
	cfg := f.spec.Autoscale
	if cfg == nil || f.clock-f.lastScaleAt < cfg.CooldownUS {
		return
	}
	live, queued := 0, 0
	for _, r := range f.replicas {
		if r.live {
			live++
			queued += len(r.queue)
		}
	}
	depth := float64(queued) / float64(live)
	switch {
	case depth > cfg.UpDepth && live < cfg.Max:
		// Activate the lowest-index dormant replica.
		for _, r := range f.replicas {
			if !r.live {
				r.live = true
				r.liveSince = f.clock
				f.res.ScaleUps++
				f.lastScaleAt = f.clock
				if live+1 > f.res.PeakReplicas {
					f.res.PeakReplicas = live + 1
				}
				return
			}
		}
	case depth < cfg.DownDepth && live > cfg.Min:
		// Retire the highest-index live replica that is idle with an
		// empty queue; if none qualifies, skip this evaluation.
		for i := len(f.replicas) - 1; i >= 0; i-- {
			r := f.replicas[i]
			if r.live && !r.busy && len(r.queue) == 0 {
				r.live = false
				r.liveUS += f.clock - r.liveSince
				f.res.ScaleDowns++
				f.lastScaleAt = f.clock
				return
			}
		}
	}
}

// finalize compacts per-request metrics and per-replica stats into the
// result. The served buffer is compacted in place — metrics are
// already in trace-ID order — so the result borrows it instead of
// copying a second multi-million-entry slice.
func (f *fleetRun) finalize() {
	k := 0
	for id, ok := range f.isServed {
		if ok {
			f.served[k] = f.served[id]
			k++
		}
	}
	f.res.Requests = f.served[:k]
	f.res.ReplicaStats = make([]ReplicaStats, len(f.replicas))
	var replicaUS float64
	for i, r := range f.replicas {
		f.res.ReplicaStats[i] = ReplicaStats{
			Replica:     i,
			GPUs:        r.cluster.GPUs,
			Served:      r.served,
			Batches:     r.batches,
			BusyUS:      r.busyUS,
			LiveUS:      r.liveUS,
			Preemptions: r.preempts,
			KVPeakBytes: r.kvPeak,
		}
		replicaUS += r.liveUS
	}
	f.res.ReplicaSeconds = replicaUS / 1e6
	if f.kv != nil {
		// Per-replica counters summed in replica order: order-free
		// integers and a max, so the parallel path cannot perturb them.
		kvs := &KVRunStats{BytesPerToken: f.kv.bpt, CapacityBytes: f.kv.capacity}
		for _, r := range f.replicas {
			kvs.Preemptions += r.preempts
			if r.kvPeak > kvs.PeakBytes {
				kvs.PeakBytes = r.kvPeak
			}
		}
		f.res.KV = kvs
	}
}
