package serving

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
)

// kvSpec builds a single-queue spec with the stub source (SL s prices
// at s*100µs, so a decode step costs 100µs) and hand-set KV knobs.
func kvSpec(tr Trace, p Policy, kv *KVConfig) Spec {
	return Spec{
		Model:    models.NewGNMT(),
		Trace:    tr,
		Policy:   p,
		Profiles: &stubSource{},
		KV:       kv,
	}
}

func TestPrependRequests(t *testing.T) {
	queue := []Request{{ID: 3}, {ID: 4}}
	evicted := []Request{{ID: 1}, {ID: 2}}
	got := prependRequests(queue, evicted)
	want := []int{1, 2, 3, 4}
	for i, r := range got {
		if r.ID != want[i] {
			t.Fatalf("prepend order %v, want IDs %v", got, want)
		}
	}
	if out := prependRequests(nil, []Request{{ID: 9}}); len(out) != 1 || out[0].ID != 9 {
		t.Fatalf("prepend into empty queue = %v", out)
	}
	if out := prependRequests([]Request{{ID: 9}}, nil); len(out) != 1 || out[0].ID != 9 {
		t.Fatalf("prepend nothing = %v", out)
	}
}

func TestKVBytesPerTokenScalesWithModel(t *testing.T) {
	small := models.KVBytesPerToken(models.NewDS2())
	large := models.KVBytesPerToken(models.NewGNMT())
	if small <= 0 || large <= 0 {
		t.Fatalf("footprints must be positive, got %v and %v", small, large)
	}
	if large <= small {
		t.Fatalf("GNMT (%v B/token) should out-weigh DS2 (%v B/token)", large, small)
	}
	// The config override wins over the model heuristic.
	k := newKVState(&KVConfig{CapacityBytes: 1, BytesPerToken: 42}, models.NewGNMT())
	if k.bpt != 42 {
		t.Fatalf("override bpt = %v, want 42", k.bpt)
	}
}

// One request, SL 3 with 4 decode steps: the prefill prices at 300µs,
// each decode step at SL 1 (100µs), so the first token lands at 300µs
// and completion at 700µs.
func TestKVPrefillDecodeSplitTiming(t *testing.T) {
	fixed, _ := NewFixedBatch(1)
	res, err := Simulate(kvSpec(replay(t, []float64{0}, []int{3}), fixed,
		&KVConfig{CapacityBytes: 1e9, DecodeSteps: 4}), gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Requests[0]
	if m.FirstUS != 300 || m.DoneUS != 700 {
		t.Fatalf("first/done = %v/%v, want 300/700", m.FirstUS, m.DoneUS)
	}
	if got := m.TTFTUS(); got != 300 {
		t.Fatalf("TTFT = %v, want 300", got)
	}
	if res.KV == nil || res.KV.Preemptions != 0 {
		t.Fatalf("KV stats = %+v, want zero preemptions", res.KV)
	}
}

// Two SL-10 requests at 10,000B each against a 15,000B ceiling: the
// pair cannot share the cache.
func kvTightTrace(t *testing.T) (Trace, Policy) {
	t.Helper()
	fixed, _ := NewFixedBatch(2)
	return replay(t, []float64{0, 0}, []int{10, 10}), fixed
}

func TestKVEvictPreemption(t *testing.T) {
	tr, pol := kvTightTrace(t)
	res, err := Simulate(kvSpec(tr, pol,
		&KVConfig{CapacityBytes: 15_000, BytesPerToken: 1000}), gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	// The second request is evicted to the queue and re-batched after
	// the first completes: two separate busy periods of 1000µs each.
	if res.KV.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", res.KV.Preemptions)
	}
	if got := []float64{res.Requests[0].DoneUS, res.Requests[1].DoneUS}; got[0] != 1000 || got[1] != 2000 {
		t.Fatalf("completions = %v, want [1000 2000]", got)
	}
	if res.Batches != 2 {
		t.Fatalf("batches = %d, want 2", res.Batches)
	}
	if res.KV.PeakBytes != 10_000 {
		t.Fatalf("peak = %v, want 10000", res.KV.PeakBytes)
	}
}

func TestKVBlockPreemption(t *testing.T) {
	tr, pol := kvTightTrace(t)
	res, err := Simulate(kvSpec(tr, pol,
		&KVConfig{CapacityBytes: 15_000, BytesPerToken: 1000, Preempt: PreemptBlock}), gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	// Both requests run as consecutive waves of one busy period; the
	// second blocks behind the first's cache and completes at 2000µs.
	if res.KV.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", res.KV.Preemptions)
	}
	if got := []float64{res.Requests[0].DoneUS, res.Requests[1].DoneUS}; got[0] != 1000 || got[1] != 2000 {
		t.Fatalf("completions = %v, want [1000 2000]", got)
	}
	// The blocked request's wave starts when the first wave's cache
	// frees: its recorded start is the wave boundary, not the launch.
	if res.Requests[1].StartUS != 1000 {
		t.Fatalf("blocked wave start = %v, want the 1000µs wave boundary", res.Requests[1].StartUS)
	}
	if res.Batches != 2 {
		t.Fatalf("waves = %d, want 2", res.Batches)
	}
}

func TestKVOversizeRequest(t *testing.T) {
	fixed, _ := NewFixedBatch(1)
	// Single-queue: an unservable request is a spec error.
	_, err := Simulate(kvSpec(replay(t, []float64{0}, []int{10}), fixed,
		&KVConfig{CapacityBytes: 5000, BytesPerToken: 1000}), gpusim.VegaFE())
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("Simulate error = %v, want a capacity complaint", err)
	}

	// Fleet: the same request is rejected at admission with a typed
	// reason; servable requests still complete.
	res := fleetSim(t, FleetSpec{
		Model: models.NewGNMT(), Trace: replay(t, []float64{0, 1}, []int{10, 2}),
		Policy: fixed, Router: NewRoundRobin(), Replicas: 1,
		KV: &KVConfig{CapacityBytes: 5000, BytesPerToken: 1000},
	})
	if len(res.Requests) != 1 || len(res.Rejections) != 1 {
		t.Fatalf("served %d rejected %d, want 1/1", len(res.Requests), len(res.Rejections))
	}
	if rej := res.Rejections[0]; rej.ID != 0 || rej.Reason != RejectReasonKVCapacity {
		t.Fatalf("rejection = %+v, want request 0 for %q", rej, RejectReasonKVCapacity)
	}
}

func TestKVRouterPrefersLeastPressure(t *testing.T) {
	r := NewKVRouter()
	views := []ReplicaView{
		{ID: 0, KVBytes: 5000, Live: true, HasRoom: true},
		{ID: 1, KVBytes: 2000, Live: true, HasRoom: true},
		{ID: 2, KVBytes: 2000, Live: true, HasRoom: true},
		{ID: 3, KVBytes: 1000, Live: true, HasRoom: true},
	}
	if got := r.Route(Request{}, views); got != 3 {
		t.Fatalf("route = %d, want the least-loaded eligible replica 3", got)
	}
	views[3].HasRoom = false
	views[0].KVBytes = 2000
	if got := r.Route(Request{}, views); got != 0 {
		t.Fatalf("route = %d, want tie broken to the lowest ID 0", got)
	}
	if got := r.Route(Request{}, []ReplicaView{{ID: 0}}); got != -1 {
		t.Fatalf("route with no eligible replica = %d, want -1", got)
	}
}

func TestFleetKVRoutingNeedsKV(t *testing.T) {
	fixed, _ := NewFixedBatch(2)
	spec := FleetSpec{
		Model: models.NewGNMT(), Trace: replay(t, []float64{0}, []int{3}),
		Policy: fixed, Router: NewKVRouter(), Replicas: 2, Profiles: &stubSource{},
	}
	if _, err := SimulateFleet(spec, gpusim.VegaFE()); err == nil ||
		!strings.Contains(err.Error(), "needs the KV model") {
		t.Fatalf("error = %v, want a kv-routing complaint", err)
	}
}

func TestDisaggValidation(t *testing.T) {
	fixed, _ := NewFixedBatch(2)
	base := FleetSpec{
		Model: models.NewGNMT(), Trace: replay(t, []float64{0}, []int{3}),
		Policy: fixed, Router: NewRoundRobin(), Replicas: 3, Profiles: &stubSource{},
		KV:     &KVConfig{CapacityBytes: 1e9},
		Disagg: &DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 2},
	}

	noKV := base
	noKV.KV = nil
	if _, err := SimulateFleet(noKV, gpusim.VegaFE()); err == nil {
		t.Error("disagg without KV should fail validation")
	}
	badSum := base
	badSum.Replicas = 4
	if _, err := SimulateFleet(badSum, gpusim.VegaFE()); err == nil {
		t.Error("pool sizes not summing to replicas should fail validation")
	}
	scaled := base
	scaled.Autoscale = &AutoscaleConfig{Min: 1, Max: 3, UpDepth: 1, DownDepth: 0.5, CooldownUS: 0}
	if _, err := SimulateFleet(scaled, gpusim.VegaFE()); err == nil {
		t.Error("disagg with autoscale should fail validation")
	}
	if err := (DisaggConfig{PrefillReplicas: 0, DecodeReplicas: 2}).Validate(); err == nil {
		t.Error("empty prefill pool should fail validation")
	}
}

func TestDisaggTwoStageServing(t *testing.T) {
	fixed, _ := NewFixedBatch(2)
	res := fleetSim(t, FleetSpec{
		Model: models.NewGNMT(), Trace: replay(t, []float64{0, 5, 9}, []int{3, 4, 5}),
		Policy: fixed, Router: NewRoundRobin(), Replicas: 2,
		KV:     &KVConfig{CapacityBytes: 1e9, DecodeSteps: 2},
		Disagg: &DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 1},
	})
	if res.Disagg != "prefill=1,decode=1" {
		t.Fatalf("disagg tag = %q", res.Disagg)
	}
	if len(res.Requests) != 3 || len(res.Rejections) != 0 {
		t.Fatalf("served %d rejected %d, want 3/0", len(res.Requests), len(res.Rejections))
	}
	for _, m := range res.Requests {
		// Merged timelines: queueing and prefill on the prefill pool,
		// completion on a decode replica (global IDs P..P+D-1), with two
		// decode steps (200µs) after the first token.
		if m.Replica != 1 {
			t.Fatalf("request %d completed on replica %d, want decode replica 1", m.ID, m.Replica)
		}
		if m.FirstUS < m.StartUS || m.DoneUS < m.FirstUS+200 {
			t.Fatalf("request %d timeline start=%v first=%v done=%v violates the two-stage shape",
				m.ID, m.StartUS, m.FirstUS, m.DoneUS)
		}
	}
	if len(res.ReplicaStats) != 2 {
		t.Fatalf("replica stats = %d entries, want 2", len(res.ReplicaStats))
	}
	if res.ReplicaStats[0].Replica != 0 || res.ReplicaStats[1].Replica != 1 {
		t.Fatalf("replica IDs = %d,%d, want 0,1", res.ReplicaStats[0].Replica, res.ReplicaStats[1].Replica)
	}
	sum := res.Summary()
	if sum.Disagg == "" || sum.P99TTFTUS <= 0 {
		t.Fatalf("summary should carry the pool split and TTFT tail, got disagg=%q p99TTFT=%v",
			sum.Disagg, sum.P99TTFTUS)
	}
}

// The disaggregated run must be deterministic across the parallelism
// knob, like every other fleet mode.
func TestDisaggParallelismByteIdentical(t *testing.T) {
	dyn, _ := NewDynamicBatch(4, 500)
	spec := FleetSpec{
		Model: models.NewGNMT(), Trace: replay(t,
			[]float64{0, 3, 5, 8, 11, 14, 16, 20}, []int{3, 7, 4, 6, 2, 9, 5, 8}),
		Policy: dyn, Router: NewRoundRobin(), Replicas: 4,
		KV:     &KVConfig{CapacityBytes: 1e9, DecodeSteps: 3},
		Disagg: &DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 2},
	}
	serial := fleetSim(t, spec)
	par := spec
	par.Router = NewRoundRobin()
	par.Parallelism = 4
	parRes := fleetSim(t, par)
	if !reflect.DeepEqual(serial.Requests, parRes.Requests) {
		t.Fatal("disagg requests diverge under parallelism")
	}
	a, _ := serial.Summary().Serialize()
	b, _ := parRes.Summary().Serialize()
	if string(a) != string(b) {
		t.Fatalf("disagg summaries diverge under parallelism:\n%s\nvs\n%s", a, b)
	}
}

func TestKVConfigValidate(t *testing.T) {
	for name, cfg := range map[string]KVConfig{
		"zero capacity":     {CapacityBytes: 0},
		"negative capacity": {CapacityBytes: -1},
		"negative steps":    {CapacityBytes: 1, DecodeSteps: -1},
		"negative bpt":      {CapacityBytes: 1, BytesPerToken: -2},
		"unknown preempt":   {CapacityBytes: 1, Preempt: "laze"},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s should fail validation", name)
		}
	}
	if err := (KVConfig{CapacityBytes: 1, Preempt: PreemptBlock}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// With KV disabled the simulator must not consult the profile source
// for decode prices: the exact pre-KV call sequence is part of the
// byte-compatibility contract the goldens pin.
func TestKVOffMakesNoDecodeProfileCalls(t *testing.T) {
	fixed, _ := NewFixedBatch(2)
	tr := replay(t, []float64{0, 5}, []int{3, 4})

	off := &stubSource{}
	if _, err := Simulate(Spec{Model: models.NewGNMT(), Trace: tr, Policy: fixed, Profiles: off},
		gpusim.VegaFE()); err != nil {
		t.Fatal(err)
	}
	on := &stubSource{}
	if _, err := Simulate(Spec{Model: models.NewGNMT(), Trace: tr, Policy: fixed, Profiles: on,
		KV: &KVConfig{CapacityBytes: 1e9, DecodeSteps: 1}}, gpusim.VegaFE()); err != nil {
		t.Fatal(err)
	}
	// The prefetch batches all SLs into one call per run; the KV run
	// must not make FEWER calls than the off run, and the off run's
	// count must be the historical single prefetch.
	if off.calls != 1 {
		t.Fatalf("KV-off run made %d profile calls, want the single prefetch", off.calls)
	}
	if on.calls < off.calls {
		t.Fatalf("KV-on run made %d calls, off %d", on.calls, off.calls)
	}
}

func TestRouteErrorIsTyped(t *testing.T) {
	if !errors.Is(ErrBadRoute, ErrBadRoute) {
		t.Fatal("ErrBadRoute must match itself")
	}
}
