package serving

import (
	"math"
	"reflect"
	"testing"

	"seqpoint/internal/dataset"
	"seqpoint/internal/engine"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/profiler"
)

// stubSource is a hermetic profile source: one batch at sequence
// length sl takes sl*100 µs regardless of batch size, so timelines are
// hand-computable.
type stubSource struct{ calls int }

func (s *stubSource) TrainProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int) (map[int]profiler.IterationProfile, error) {
	return s.EvalProfiles(hw, cl, m, batch, seqLens)
}

func (s *stubSource) EvalProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int) (map[int]profiler.IterationProfile, error) {
	s.calls++
	out := make(map[int]profiler.IterationProfile, len(seqLens))
	for _, sl := range seqLens {
		out[sl] = profiler.IterationProfile{SeqLen: sl, Batch: batch, TimeUS: float64(sl) * 100}
	}
	return out, nil
}

func replay(t *testing.T, arrivals []float64, sls []int) Trace {
	t.Helper()
	tr, err := ReplayTrace("test", arrivals, sls)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func simulate(t *testing.T, tr Trace, p Policy) *Result {
	t.Helper()
	res, err := Simulate(Spec{
		Model:    models.NewGNMT(),
		Trace:    tr,
		Policy:   p,
		Profiles: &stubSource{},
	}, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPoissonTraceDeterministicAndValid(t *testing.T) {
	c := dataset.IWSLT15(1)
	a, err := PoissonTrace(c, 256, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonTrace(c, 256, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different traces")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("generated trace invalid: %v", err)
	}
	if len(a.Requests) != 256 {
		t.Errorf("trace has %d requests, want 256", len(a.Requests))
	}
	other, err := PoissonTrace(c, 256, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Requests, other.Requests) {
		t.Error("different seeds produced identical traces")
	}
	// Mean inter-arrival should be near 1/rate (20ms at 50 rps).
	meanIA := a.Requests[len(a.Requests)-1].ArrivalUS / float64(len(a.Requests))
	if meanIA < 10e3 || meanIA > 40e3 {
		t.Errorf("mean inter-arrival %v µs implausible for 50 rps", meanIA)
	}
}

func TestPoissonTraceErrors(t *testing.T) {
	c := dataset.IWSLT15(1)
	if _, err := PoissonTrace(nil, 10, 1, 1); err == nil {
		t.Error("nil corpus should error")
	}
	if _, err := PoissonTrace(c, 0, 1, 1); err == nil {
		t.Error("zero requests should error")
	}
	if _, err := PoissonTrace(c, 10, 0, 1); err == nil {
		t.Error("zero rate should error")
	}
}

func TestReplayTraceValidation(t *testing.T) {
	if _, err := ReplayTrace("bad", []float64{0, 1}, []int{5}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ReplayTrace("bad", []float64{10, 5}, []int{5, 5}); err == nil {
		t.Error("decreasing arrivals should error")
	}
	if _, err := ReplayTrace("bad", []float64{0}, []int{0}); err == nil {
		t.Error("non-positive SL should error")
	}
	if _, err := ReplayTrace("bad", nil, nil); err == nil {
		t.Error("empty trace should error")
	}
}

// TestFixedBatchTimeline checks the hand-computed event timeline of
// the fixed policy: batch formation waits for a full batch, a partial
// batch drains the trace.
func TestFixedBatchTimeline(t *testing.T) {
	tr := replay(t, []float64{0, 50, 60}, []int{2, 4, 1})
	p, err := NewFixedBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, tr, p)

	if res.Batches != 2 {
		t.Fatalf("batches = %d, want 2", res.Batches)
	}
	// Batch 1: requests 0+1 dispatch at t=50 (second arrival), padded
	// SL 4 → 400µs → done at 450. Batch 2: request 2 alone (trace
	// drained), starts at 450, SL 1 → 100µs → done at 550.
	want := []RequestMetric{
		{ID: 0, SeqLen: 2, ArrivalUS: 0, StartUS: 50, DoneUS: 450, BatchSize: 2, PaddedSL: 4},
		{ID: 1, SeqLen: 4, ArrivalUS: 50, StartUS: 50, DoneUS: 450, BatchSize: 2, PaddedSL: 4},
		{ID: 2, SeqLen: 1, ArrivalUS: 60, StartUS: 450, DoneUS: 550, BatchSize: 1, PaddedSL: 1},
	}
	if !reflect.DeepEqual(res.Requests, want) {
		t.Errorf("timeline = %+v,\nwant %+v", res.Requests, want)
	}
	if res.BusyUS != 500 || res.MakespanUS != 550 {
		t.Errorf("busy/makespan = %v/%v, want 500/550", res.BusyUS, res.MakespanUS)
	}
	s := res.Summary()
	if s.P50LatencyUS != 450 || s.P99LatencyUS != 490 {
		t.Errorf("p50/p99 = %v/%v, want 450/490", s.P50LatencyUS, s.P99LatencyUS)
	}
}

// TestDynamicBatchTimeout checks that the dynamic policy launches a
// partial batch once the oldest request has waited out the timeout.
func TestDynamicBatchTimeout(t *testing.T) {
	tr := replay(t, []float64{0, 50, 300}, []int{2, 4, 1})
	p, err := NewDynamicBatch(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, tr, p)

	if res.Batches != 2 {
		t.Fatalf("batches = %d, want 2", res.Batches)
	}
	// Request 0's deadline is t=100: requests 0+1 launch then (padded
	// SL 4 → 400µs, done 500). Request 2 arrived at 300 and its
	// deadline passed while the server was busy, so it launches
	// immediately at 500.
	r0 := res.Requests[0]
	if r0.StartUS != 100 || r0.DoneUS != 500 || r0.BatchSize != 2 {
		t.Errorf("request 0 = %+v, want start 100 done 500 batch 2", r0)
	}
	r2 := res.Requests[2]
	if r2.StartUS != 500 || r2.DoneUS != 600 {
		t.Errorf("request 2 = %+v, want start 500 done 600", r2)
	}
}

// TestDynamicZeroTimeoutServesImmediately: timeout 0 degenerates into
// serve-whatever-is-queued, the lowest-latency policy.
func TestDynamicZeroTimeoutServesImmediately(t *testing.T) {
	tr := replay(t, []float64{0, 10}, []int{3, 3})
	p, err := NewDynamicBatch(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, tr, p)
	if res.Batches != 2 {
		t.Fatalf("batches = %d, want 2", res.Batches)
	}
	if res.Requests[0].StartUS != 0 {
		t.Errorf("request 0 started at %v, want 0", res.Requests[0].StartUS)
	}
}

// TestLengthAwarePicksSimilarSLs checks the greedy batcher groups the
// oldest request with its closest sequence lengths, cutting padding.
func TestLengthAwarePicksSimilarSLs(t *testing.T) {
	tr := replay(t, []float64{0, 0, 0, 0}, []int{10, 100, 12, 90})
	p, err := NewLengthAware(2)
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, tr, p)

	if res.Batches != 2 {
		t.Fatalf("batches = %d, want 2", res.Batches)
	}
	// Batch 1 anchors on SL 10 and should pick SL 12 (not FIFO's SL
	// 100): padded 12 instead of 100.
	if res.Requests[0].PaddedSL != 12 || res.Requests[2].PaddedSL != 12 {
		t.Errorf("length-aware batch 1 padded SLs = %d/%d, want 12/12",
			res.Requests[0].PaddedSL, res.Requests[2].PaddedSL)
	}
	if res.Requests[1].PaddedSL != 100 || res.Requests[3].PaddedSL != 100 {
		t.Errorf("length-aware batch 2 padded SLs = %d/%d, want 100/100",
			res.Requests[1].PaddedSL, res.Requests[3].PaddedSL)
	}

	// The same trace under FIFO fixed batching pads batch 1 to 100:
	// length-aware must be strictly cheaper in total busy time.
	fp, err := NewFixedBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	fifo := simulate(t, tr, fp)
	if res.BusyUS >= fifo.BusyUS {
		t.Errorf("length-aware busy %v >= FIFO busy %v", res.BusyUS, fifo.BusyUS)
	}
}

// TestLargeFixedBatchFillsFromArrivals is the regression test for the
// consult-limit bug: filling a 128-request batch one arrival at a time
// takes 127 wait-consults, which the old fixed 64-consult cap rejected
// even though the batch size is perfectly valid.
func TestLargeFixedBatchFillsFromArrivals(t *testing.T) {
	c := dataset.IWSLT15(1)
	trc, err := PoissonTrace(c, 256, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewFixedBatch(128)
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, trc, p)
	if res.Batches != 2 {
		t.Errorf("batches = %d, want 2 full batches of 128", res.Batches)
	}
	if res.Requests[0].BatchSize != 128 {
		t.Errorf("batch size = %d, want 128", res.Requests[0].BatchSize)
	}
}

// TestLengthAwareDeepBacklogBounded: with a deep backlog the
// length-aware picker only examines its candidate window per dispatch
// (keeping total work linear in the trace), still drains every request
// exactly once, and never starves the oldest request.
func TestLengthAwareDeepBacklogBounded(t *testing.T) {
	c := dataset.IWSLT15(1)
	trc, err := BurstTrace(c, 4096, 13)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewLengthAware(2)
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, trc, p)
	if res.Batches != 2048 {
		t.Errorf("batches = %d, want 2048", res.Batches)
	}
	served := make(map[int]bool, len(res.Requests))
	for _, m := range res.Requests {
		if served[m.ID] {
			t.Fatalf("request %d served twice", m.ID)
		}
		served[m.ID] = true
	}
	// FIFO anchor: request 0 is in the very first batch.
	if res.Requests[0].StartUS != 0 {
		t.Errorf("oldest request started at %v, want 0", res.Requests[0].StartUS)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{PolicyFixed, PolicyDynamic, PolicyLength, PolicyWFQ} {
		p, err := ParsePolicy(name, 4, 100)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
			continue
		}
		if p.MaxBatch() != 4 {
			t.Errorf("ParsePolicy(%q).MaxBatch() = %d, want 4", name, p.MaxBatch())
		}
	}
	if _, err := ParsePolicy("bogus", 4, 0); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := ParsePolicy(PolicyFixed, 0, 0); err == nil {
		t.Error("non-positive batch should error")
	}
	if _, err := ParsePolicy(PolicyDynamic, 4, math.Inf(1)); err == nil {
		t.Error("infinite timeout should error")
	}
}

func TestSpecValidate(t *testing.T) {
	tr := replay(t, []float64{0}, []int{5})
	p, _ := NewFixedBatch(2)
	cases := []struct {
		name string
		spec Spec
	}{
		{"no model", Spec{Trace: tr, Policy: p}},
		{"no policy", Spec{Model: models.NewGNMT(), Trace: tr}},
		{"empty trace", Spec{Model: models.NewGNMT(), Policy: p}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

// TestHigherLoadHigherWait is the queueing sanity check: at the same
// service rate, doubling the arrival rate must not reduce mean wait.
func TestHigherLoadHigherWait(t *testing.T) {
	c := dataset.IWSLT15(1)
	waits := make([]float64, 0, 2)
	for _, rate := range []float64{200, 2000} {
		trc, err := PoissonTrace(c, 400, rate, 11)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewDynamicBatch(8, 2000)
		if err != nil {
			t.Fatal(err)
		}
		res := simulate(t, trc, p)
		waits = append(waits, res.Summary().MeanWaitUS)
	}
	if waits[1] < waits[0] {
		t.Errorf("mean wait fell from %v to %v µs as load rose 10x", waits[0], waits[1])
	}
}

// TestSummaryAccounting cross-checks the roll-up against first
// principles on a real simulation.
func TestSummaryAccounting(t *testing.T) {
	c := dataset.IWSLT15(1)
	trc, err := PoissonTrace(c, 200, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewDynamicBatch(8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, trc, p)
	s := res.Summary()

	if s.Requests != 200 {
		t.Errorf("summary requests = %d, want 200", s.Requests)
	}
	if s.Batches != res.Batches || s.Batches <= 0 {
		t.Errorf("summary batches = %d, result %d", s.Batches, res.Batches)
	}
	if s.UtilizationPct <= 0 || s.UtilizationPct > 100 {
		t.Errorf("utilization %v%% outside (0,100]", s.UtilizationPct)
	}
	if !(s.P50LatencyUS <= s.P95LatencyUS && s.P95LatencyUS <= s.P99LatencyUS) {
		t.Errorf("percentiles not monotone: p50=%v p95=%v p99=%v",
			s.P50LatencyUS, s.P95LatencyUS, s.P99LatencyUS)
	}
	for _, m := range res.Requests {
		if m.StartUS < m.ArrivalUS {
			t.Fatalf("request %d started before it arrived: %+v", m.ID, m)
		}
		if m.DoneUS <= m.StartUS {
			t.Fatalf("request %d has non-positive service time: %+v", m.ID, m)
		}
	}
	buf, err := s.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) == 0 || buf[len(buf)-1] != '\n' {
		t.Error("Serialize should end with a newline")
	}
}

// TestSimulateThroughEngineDeterministic runs the same spec through
// fresh private engines at profiling parallelism 1 and 4 and requires
// byte-identical summaries — the serving-side determinism contract.
// (The root golden harness extends this to GOMAXPROCS plus a committed
// golden file.)
func TestSimulateThroughEngineDeterministic(t *testing.T) {
	c := dataset.Subsample(dataset.IWSLT15(1), 96, 1)
	trc, err := PoissonTrace(c, 64, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	var ref []byte
	for _, par := range []int{1, 4} {
		eng := engine.New()
		eng.SetParallelism(par)
		p, err := NewDynamicBatch(4, 500)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(Spec{Model: models.NewGNMT(), Trace: trc, Policy: p, Profiles: eng}, gpusim.VegaFE())
		if err != nil {
			t.Fatal(err)
		}
		buf, err := res.Summary().Serialize()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf
			continue
		}
		if string(buf) != string(ref) {
			t.Errorf("summary at parallelism %d differs:\n%s\nvs\n%s", par, buf, ref)
		}
	}
}
