package serving

import (
	"fmt"
	"sort"

	"seqpoint/internal/gpusim"
)

// Disaggregated serving: the fleet is split into a prefill pool
// (replicas 0..P-1) and a decode pool (P..P+D-1) joined by a handoff
// queue, the topology production inference stacks use to keep
// long-prefill requests from stalling decode token streams. The run
// composes two deterministic fleet stages:
//
//  1. The prefill pool serves the arrival trace with the spec's router
//     and admission bound, each request priced as its prefill only
//     (KV holds the input tokens).
//  2. Every prefill completion enters the handoff queue in completion
//     order — (prefill-done time, trace ID), the order a real handoff
//     would observe — and becomes an arrival to the decode pool,
//     which routes by least KV pressure (the resource decode contends
//     on), holds (input + generated) tokens of cache per request, and
//     prices pad-to-max decode waves. The handoff queue is unbounded:
//     admission control happened at the front door.
//
// Because each stage is itself byte-deterministic at any profiling or
// replica-advancement parallelism, so is the composition; the merge
// below is pure bookkeeping in fixed (trace ID / replica ID) order.

// DisaggConfig splits a fleet into prefill and decode pools.
type DisaggConfig struct {
	// PrefillReplicas and DecodeReplicas size the two pools; their sum
	// must equal FleetSpec.Replicas, and with per-replica Clusters the
	// first PrefillReplicas entries form the prefill pool.
	PrefillReplicas int
	DecodeReplicas  int
}

// Validate reports whether both pools are populated.
func (d DisaggConfig) Validate() error {
	if d.PrefillReplicas < 1 || d.DecodeReplicas < 1 {
		return fmt.Errorf("serving: disagg pools need at least one replica each, got prefill %d, decode %d",
			d.PrefillReplicas, d.DecodeReplicas)
	}
	return nil
}

// simulateDisagg runs the two-stage disaggregated topology. spec is
// already validated and has Disagg (and therefore KV) set.
func simulateDisagg(spec FleetSpec, hw gpusim.Config) (*FleetResult, error) {
	P, D := spec.Disagg.PrefillReplicas, spec.Disagg.DecodeReplicas

	pre := spec
	pre.Disagg = nil
	pre.Replicas = P
	kvPre := *spec.KV
	kvPre.phase = phasePrefill
	pre.KV = &kvPre
	if len(spec.Clusters) > 0 {
		pre.Clusters = spec.Clusters[:P]
	}
	preRes, err := SimulateFleet(pre, hw)
	if err != nil {
		return nil, err
	}

	// The handoff queue: prefill completions in (done time, trace ID)
	// order become the decode pool's arrival trace.
	hand := append([]RequestMetric(nil), preRes.Requests...)
	sort.Slice(hand, func(i, j int) bool {
		if hand[i].DoneUS != hand[j].DoneUS {
			return hand[i].DoneUS < hand[j].DoneUS
		}
		return hand[i].ID < hand[j].ID
	})
	orig := spec.Trace.Requests
	reqs := make([]Request, len(hand))
	for i, m := range hand {
		reqs[i] = Request{
			ID:          i,
			ArrivalUS:   m.DoneUS,
			SeqLen:      m.SeqLen,
			DecodeSteps: orig[m.ID].DecodeSteps,
		}
	}

	res := &FleetResult{
		Config:       hw,
		Routing:      spec.Router.Name(),
		Policy:       spec.Policy.Name(),
		Replicas:     P + D,
		QueueCap:     spec.QueueCap,
		Disagg:       fmt.Sprintf("prefill=%d,decode=%d", P, D),
		Batches:      preRes.Batches,
		BusyUS:       preRes.BusyUS,
		MakespanUS:   preRes.MakespanUS,
		PeakReplicas: P + D,
		Rejections:   preRes.Rejections,
	}

	var decRes *FleetResult
	if len(reqs) > 0 {
		dec := spec
		dec.Disagg = nil
		dec.Replicas = D
		dec.Trace = Trace{Name: spec.Trace.Name + "+handoff", Requests: reqs}
		dec.Router = NewKVRouter()
		dec.QueueCap = 0
		kvDec := *spec.KV
		kvDec.phase = phaseDecode
		dec.KV = &kvDec
		if len(spec.Clusters) > 0 {
			dec.Clusters = spec.Clusters[P:]
		}
		if decRes, err = SimulateFleet(dec, hw); err != nil {
			return nil, err
		}
		res.Batches += decRes.Batches
		res.BusyUS += decRes.BusyUS
		if decRes.MakespanUS > res.MakespanUS {
			res.MakespanUS = decRes.MakespanUS
		}
	}

	// Merge per-request metrics back under original trace IDs: queueing
	// and prefill timing from stage 1, completion (and the decode batch
	// it rode) from stage 2. FirstUS — the TTFT instant — is the
	// prefill completion, which is where the first output token exists
	// in this topology too.
	if decRes != nil {
		res.Requests = make([]RequestMetric, 0, len(decRes.Requests))
		byOrig := make([]RequestMetric, len(orig))
		taken := make([]bool, len(orig))
		for _, dm := range decRes.Requests {
			pm := hand[dm.ID]
			origID := pm.ID
			byOrig[origID] = RequestMetric{
				ID:        origID,
				SeqLen:    pm.SeqLen,
				ArrivalUS: pm.ArrivalUS,
				StartUS:   pm.StartUS,
				FirstUS:   pm.FirstUS,
				DoneUS:    dm.DoneUS,
				BatchSize: dm.BatchSize,
				PaddedSL:  pm.PaddedSL,
				Replica:   P + dm.Replica,
			}
			taken[origID] = true
		}
		for id, ok := range taken {
			if ok {
				res.Requests = append(res.Requests, byOrig[id])
			}
		}
		// A request the decode pool refused (its full context can never
		// fit) surfaces as a kv_capacity rejection under its original
		// identity.
		for _, rej := range decRes.Rejections {
			origID := hand[rej.ID].ID
			res.Rejections = append(res.Rejections, Rejection{
				ID: origID, ArrivalUS: orig[origID].ArrivalUS, SeqLen: rej.SeqLen, Reason: rej.Reason,
			})
		}
		sort.Slice(res.Rejections, func(i, j int) bool { return res.Rejections[i].ID < res.Rejections[j].ID })
	}

	// Pool stats concatenate with decode replicas renumbered into the
	// global ID space.
	res.ReplicaStats = make([]ReplicaStats, 0, P+D)
	res.ReplicaStats = append(res.ReplicaStats, preRes.ReplicaStats...)
	res.ReplicaSeconds = preRes.ReplicaSeconds
	kvs := &KVRunStats{
		BytesPerToken: preRes.KV.BytesPerToken,
		CapacityBytes: preRes.KV.CapacityBytes,
		PeakBytes:     preRes.KV.PeakBytes,
		Preemptions:   preRes.KV.Preemptions,
	}
	if decRes != nil {
		for _, rs := range decRes.ReplicaStats {
			rs.Replica += P
			res.ReplicaStats = append(res.ReplicaStats, rs)
		}
		res.ReplicaSeconds += decRes.ReplicaSeconds
		kvs.Preemptions += decRes.KV.Preemptions
		if decRes.KV.PeakBytes > kvs.PeakBytes {
			kvs.PeakBytes = decRes.KV.PeakBytes
		}
	} else {
		// An all-rejected trace still allocated the decode pool; its
		// replicas idled for the whole (empty) run.
		for i := 0; i < D; i++ {
			gpus := 1
			if len(spec.Clusters) > 0 {
				gpus = spec.Clusters[P+i].GPUs
			}
			res.ReplicaStats = append(res.ReplicaStats, ReplicaStats{Replica: P + i, GPUs: gpus})
		}
	}
	res.KV = kvs
	return res, nil
}
