package serving

import "math"

// replicaHeap is an indexed binary min-heap over per-replica event
// times, replacing the event loop's O(R)-per-event linear scans. Each
// replica owns one slot keyed by its next self-generated event: its
// batch completion when busy, its armed policy wake deadline when idle
// with queued work, and +Inf (absent from the heap) otherwise. The
// event loop updates a replica's key whenever that state changes and
// reads the minimum in O(1).
//
// Ties break toward the lower replica ID so the heap's minimum is
// bit-for-bit the value the old replica-order scan produced — the
// determinism contract makes tie order observable through float
// accumulation downstream.
type replicaHeap struct {
	// keys[id] is replica id's event time (+Inf = not in the heap).
	keys []float64
	// heap holds the IDs with finite keys in heap order; pos[id] is
	// id's index in heap, -1 when absent.
	heap []int
	pos  []int
}

func newReplicaHeap(n int) *replicaHeap {
	h := &replicaHeap{
		keys: make([]float64, n),
		heap: make([]int, 0, n),
		pos:  make([]int, n),
	}
	for i := range h.keys {
		h.keys[i] = math.Inf(1)
		h.pos[i] = -1
	}
	return h
}

// update sets replica id's event time, inserting, moving or removing
// its heap slot as needed. +Inf removes.
func (h *replicaHeap) update(id int, t float64) {
	old := h.keys[id]
	if old == t {
		return
	}
	h.keys[id] = t
	at := h.pos[id]
	switch {
	case math.IsInf(t, 1): // remove
		if at >= 0 {
			h.removeAt(at)
		}
	case at < 0: // insert
		h.heap = append(h.heap, id)
		h.pos[id] = len(h.heap) - 1
		h.up(len(h.heap) - 1)
	case t < old:
		h.up(at)
	default:
		h.down(at)
	}
}

// min returns the earliest replica event time, +Inf when no replica
// has one pending.
func (h *replicaHeap) min() float64 {
	if len(h.heap) == 0 {
		return math.Inf(1)
	}
	return h.keys[h.heap[0]]
}

// less orders heap slots by (time, replica ID).
func (h *replicaHeap) less(a, b int) bool {
	ka, kb := h.keys[h.heap[a]], h.keys[h.heap[b]]
	if ka != kb {
		return ka < kb
	}
	return h.heap[a] < h.heap[b]
}

func (h *replicaHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *replicaHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *replicaHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *replicaHeap) removeAt(i int) {
	id := h.heap[i]
	last := len(h.heap) - 1
	if i != last {
		h.swap(i, last)
	}
	h.heap = h.heap[:last]
	h.pos[id] = -1
	if i < last {
		h.down(i)
		h.up(i)
	}
}
