package serving

import (
	"encoding/json"
	"fmt"

	"seqpoint/internal/stats"
)

// FleetSummary is the deterministic, serialization-stable digest of a
// fleet run: the roll-up POST /v1/fleet returns and the golden
// determinism tests byte-compare. It extends the single-queue Summary
// with admission (drop rate), per-replica shares, and the autoscaler's
// cost proxy (replica-seconds).
type FleetSummary struct {
	Config   string `json:"config"`
	Routing  string `json:"routing"`
	Policy   string `json:"policy"`
	Replicas int    `json:"replicas"`
	QueueCap int    `json:"queue_cap"`

	Requests    int     `json:"requests"`
	Served      int     `json:"served"`
	Rejected    int     `json:"rejected"`
	DropRatePct float64 `json:"drop_rate_pct"`

	Batches        int     `json:"batches"`
	MeanBatch      float64 `json:"mean_batch"`
	MakespanUS     float64 `json:"makespan_us"`
	BusyUS         float64 `json:"busy_us"`
	UtilizationPct float64 `json:"utilization_pct"`
	ThroughputRPS  float64 `json:"throughput_rps"`

	MeanWaitUS    float64 `json:"mean_wait_us"`
	MeanLatencyUS float64 `json:"mean_latency_us"`
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P95LatencyUS  float64 `json:"p95_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`

	ReplicaSeconds float64 `json:"replica_seconds"`
	ScaleUps       int     `json:"scale_ups"`
	ScaleDowns     int     `json:"scale_downs"`
	PeakReplicas   int     `json:"peak_replicas"`

	// KV-model roll-ups, only emitted when the run had KV enabled
	// (omitempty keeps KV-off summaries byte-identical to the pre-KV
	// format). TTFT is arrival → prefill completion; Disagg names the
	// prefill/decode pool split for disaggregated topologies.
	MeanTTFTUS      float64 `json:"mean_ttft_us,omitempty"`
	P50TTFTUS       float64 `json:"p50_ttft_us,omitempty"`
	P95TTFTUS       float64 `json:"p95_ttft_us,omitempty"`
	P99TTFTUS       float64 `json:"p99_ttft_us,omitempty"`
	Preemptions     int     `json:"preemptions,omitempty"`
	KVCapacityBytes float64 `json:"kv_capacity_bytes,omitempty"`
	KVPeakBytes     float64 `json:"kv_peak_bytes,omitempty"`
	Disagg          string  `json:"disagg,omitempty"`

	// PerTenant rolls latency tails and drop rates up by tenant, sorted
	// by label; nil (and omitted) on single-tenant traces.
	PerTenant []TenantStats `json:"per_tenant,omitempty"`

	PerReplica []ReplicaStats `json:"per_replica"`
}

// Throughput returns served requests per second over the makespan.
func (r *FleetResult) Throughput() float64 {
	if r.MakespanUS == 0 {
		return 0
	}
	return float64(len(r.Requests)) / (r.MakespanUS / 1e6)
}

// Summary digests the run. Latency percentiles are nearest-rank over
// served requests only; rejected requests contribute to the drop rate,
// not the tail. Utilization is busy time over live time summed across
// replicas, so an autoscaled fleet is judged on the capacity it
// actually kept on.
func (r *FleetResult) Summary() FleetSummary {
	s := FleetSummary{
		Config:         r.Config.Name,
		Routing:        r.Routing,
		Policy:         r.Policy,
		Replicas:       r.Replicas,
		QueueCap:       r.QueueCap,
		Requests:       len(r.Requests) + len(r.Rejections),
		Served:         len(r.Requests),
		Rejected:       len(r.Rejections),
		Batches:        r.Batches,
		MakespanUS:     r.MakespanUS,
		BusyUS:         r.BusyUS,
		ThroughputRPS:  r.Throughput(),
		ReplicaSeconds: r.ReplicaSeconds,
		ScaleUps:       r.ScaleUps,
		ScaleDowns:     r.ScaleDowns,
		PeakReplicas:   r.PeakReplicas,
		PerReplica:     append([]ReplicaStats(nil), r.ReplicaStats...),
	}
	if s.Requests > 0 {
		s.DropRatePct = float64(s.Rejected) / float64(s.Requests) * 100
	}
	if r.Batches > 0 {
		s.MeanBatch = float64(s.Served) / float64(r.Batches)
	}
	var liveUS float64
	for _, rs := range r.ReplicaStats {
		liveUS += rs.LiveUS
	}
	if liveUS > 0 {
		s.UtilizationPct = r.BusyUS / liveUS * 100
	}
	if r.KV != nil {
		// Scalars first, so even an all-rejected run reports its
		// capacity configuration and admission-time peak.
		s.Preemptions = r.KV.Preemptions
		s.KVCapacityBytes = r.KV.CapacityBytes
		s.KVPeakBytes = r.KV.PeakBytes
		s.Disagg = r.Disagg
	}
	s.PerTenant = perTenantStats(r.Requests, r.Rejections, r.KV != nil)
	if s.Served == 0 {
		return s
	}
	lats := make([]float64, len(r.Requests))
	var waitSum float64
	for i, m := range r.Requests {
		lats[i] = m.LatencyUS()
		waitSum += m.WaitUS()
	}
	s.MeanWaitUS = waitSum / float64(len(r.Requests))
	s.MeanLatencyUS = stats.Sum(lats) / float64(len(lats))
	// lats is this function's own scratch, so rank in place instead of
	// letting Percentiles duplicate a million-element slice. It only
	// errors on empty input or p outside [0,100]; neither can happen
	// here.
	if ps, err := stats.PercentilesInPlace(lats, 50, 95, 99); err == nil {
		s.P50LatencyUS, s.P95LatencyUS, s.P99LatencyUS = ps[0], ps[1], ps[2]
	}
	if r.KV != nil {
		s.MeanTTFTUS, s.P50TTFTUS, s.P95TTFTUS, s.P99TTFTUS = ttftDigest(r.Requests)
	}
	return s
}

// Serialize renders the summary as indented JSON with a trailing
// newline; the output is deterministic and byte-comparable, matching
// the Summary and trainer.RunSummary conventions.
func (s FleetSummary) Serialize() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// AsServing converts a 1-replica, zero-rejection fleet run into the
// equivalent single-queue Result: the witness that the fleet layer is
// a strict generalization of Simulate. The returned Result's Summary
// serializes byte-identically to running Simulate on the same spec.
func (r *FleetResult) AsServing() (*Result, error) {
	if r.Replicas != 1 {
		return nil, fmt.Errorf("serving: AsServing needs a 1-replica fleet, got %d replicas", r.Replicas)
	}
	if len(r.Rejections) > 0 {
		return nil, fmt.Errorf("serving: AsServing needs a rejection-free run, got %d rejections", len(r.Rejections))
	}
	out := &Result{
		Config:     r.Config,
		Policy:     r.Policy,
		Requests:   append([]RequestMetric(nil), r.Requests...),
		Batches:    r.Batches,
		BusyUS:     r.BusyUS,
		MakespanUS: r.MakespanUS,
	}
	if r.KV != nil {
		kv := *r.KV
		out.KV = &kv
	}
	return out, nil
}
