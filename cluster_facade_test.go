package seqpoint_test

// Facade-level coverage for the multi-GPU cluster layer: the
// SimulateCluster/ClusterConfig/RingAllReduce re-exports and the
// composition the paper's flow relies on — SeqPoints selected on one
// GPU projecting an 8-GPU configuration within the single-GPU error
// envelope.

import (
	"math"
	"testing"

	"seqpoint"
)

func clusterTestSpec(t *testing.T) seqpoint.Spec {
	t.Helper()
	lengths := make([]int, 512)
	for i := range lengths {
		lengths[i] = 5 + (i*29)%70
	}
	corpus, err := seqpoint.Synthetic("cluster-e2e", lengths, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return seqpoint.Spec{
		Model:    seqpoint.NewGNMT(),
		Train:    corpus,
		Batch:    32,
		Epochs:   1,
		Schedule: seqpoint.GNMTSchedule(),
		Seed:     5,
	}
}

func TestSimulateClusterMatchesSpecCluster(t *testing.T) {
	spec := clusterTestSpec(t)
	cfg := seqpoint.VegaFE()
	cluster := seqpoint.DefaultCluster(4)

	viaWrapper, err := seqpoint.SimulateCluster(spec, cfg, cluster)
	if err != nil {
		t.Fatal(err)
	}
	spec.Cluster = cluster
	viaSpec, err := seqpoint.Simulate(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := viaWrapper.Summary().Serialize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaSpec.Summary().Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("SimulateCluster and Spec.Cluster disagree")
	}
	if viaWrapper.CommUS <= 0 {
		t.Error("4-GPU GNMT run must expose communication time")
	}
}

// TestSeqPointProjectsClusterWithinEnvelope is the facade statement of
// the acceptance criterion: select on 1 GPU, project an 8-GPU config
// via Equation 1, and land within ~5% of the full cluster simulation.
func TestSeqPointProjectsClusterWithinEnvelope(t *testing.T) {
	spec := clusterTestSpec(t)
	cfg := seqpoint.VegaFE()

	calib, err := seqpoint.Simulate(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := seqpoint.RecordsFromRun(calib, 0)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := seqpoint.Select(recs, seqpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}

	run8, err := seqpoint.SimulateCluster(spec, cfg, seqpoint.DefaultCluster(8))
	if err != nil {
		t.Fatal(err)
	}
	proj, err := seqpoint.ProjectTotal(sel.Points, seqpoint.IterTimesBySL(run8))
	if err != nil {
		t.Fatal(err)
	}
	if errPct := math.Abs(proj-run8.TrainUS) / run8.TrainUS * 100; errPct > 5 {
		t.Errorf("8-GPU projection error %.2f%% exceeds the 5%% envelope", errPct)
	}
}

func TestClusterReExports(t *testing.T) {
	// RingAllReduce: 2(N-1)/N * bytes at link speed plus hop latencies.
	const bytes, bw, lat = 640e6, 25.0, 1.5
	want := 2.0 * 7 / 8 * bytes / (bw * 1e9) * 1e6
	want += 2 * 7 * lat
	if got := seqpoint.RingAllReduce(8, bytes, bw, lat); math.Abs(got-want) > 1e-6*want {
		t.Errorf("RingAllReduce = %v, want %v", got, want)
	}
	if seqpoint.MeshAllReduce(8, bytes, bw, lat) >= seqpoint.RingAllReduce(8, bytes, bw, lat) {
		t.Error("mesh must beat ring at equal link speed")
	}
	if topo, err := seqpoint.ParseTopology("mesh"); err != nil || topo != seqpoint.TopologyFullMesh {
		t.Errorf("ParseTopology(mesh) = %v, %v", topo, err)
	}
	var cl seqpoint.ClusterConfig
	if cl.Normalized() != seqpoint.SingleGPU() {
		t.Error("zero ClusterConfig must normalize to the single GPU")
	}
	if err := seqpoint.DefaultCluster(8).Validate(); err != nil {
		t.Errorf("DefaultCluster(8) invalid: %v", err)
	}
}
