module seqpoint

go 1.22
