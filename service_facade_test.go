package seqpoint_test

// Facade coverage for the serving subsystem: the public re-exports must
// be enough to run the full service story — build a server over a
// private engine, query it through the typed client, persist the cache
// and restore it warm — without touching internal packages.

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"seqpoint"
)

func TestServiceFacadeRoundTrip(t *testing.T) {
	eng := seqpoint.NewEngine()
	srv := seqpoint.NewServer(seqpoint.ServerOptions{Engine: eng})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := seqpoint.NewServiceClient(ts.URL, nil)
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	req := seqpoint.SimulateRequest{
		Model:   "gnmt",
		Batch:   4,
		SeqLens: []int{4, 7, 9, 12, 4, 9, 15, 21},
	}
	sum, err := client.Simulate(ctx, req)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if sum.Iterations == 0 || sum.TrainUS <= 0 {
		t.Fatalf("degenerate summary: %+v", sum)
	}

	// Snapshot through the facade, restore into a fresh engine, and
	// verify the restarted server answers the same query warm.
	cachePath := filepath.Join(t.TempDir(), "cache.json")
	if _, err := eng.SaveSnapshot(cachePath); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	restarted := seqpoint.NewEngine()
	n, err := restarted.LoadSnapshot(cachePath)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if n == 0 {
		t.Fatal("snapshot restored no profiles")
	}

	ts2 := httptest.NewServer(seqpoint.NewServer(seqpoint.ServerOptions{Engine: restarted}))
	defer ts2.Close()
	sum2, err := seqpoint.NewServiceClient(ts2.URL, nil).Simulate(ctx, req)
	if err != nil {
		t.Fatalf("warm simulate: %v", err)
	}
	stats := restarted.Stats()
	if stats.Misses != 0 {
		t.Fatalf("restarted engine recomputed %d profiles; want all served from the restored cache", stats.Misses)
	}
	a, err := sum.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sum2.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("warm restart changed the answer:\n%s\nvs\n%s", a, b)
	}

	if seqpoint.CacheSnapshotVersion < 1 {
		t.Fatalf("CacheSnapshotVersion = %d, want >= 1", seqpoint.CacheSnapshotVersion)
	}
}

// TestServiceFacadeObservability: the facade is enough to scrape
// metrics and drain a server — the daemon's shutdown story without
// internal packages.
func TestServiceFacadeObservability(t *testing.T) {
	srv := seqpoint.NewServer(seqpoint.ServerOptions{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := seqpoint.NewServiceClient(ts.URL, nil)
	ctx := context.Background()
	if _, err := client.Simulate(ctx, seqpoint.SimulateRequest{
		Model: "gnmt", Batch: 2, SeqLens: []int{4, 7},
	}); err != nil {
		t.Fatalf("simulate: %v", err)
	}

	exposition, err := client.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, series := range []string{
		`seqpoint_requests_total{endpoint="/v1/simulate",status="200"}`,
		"seqpoint_request_duration_seconds_bucket",
		"seqpoint_cache_hit_ratio",
	} {
		if !strings.Contains(exposition, series) {
			t.Errorf("metrics exposition missing %s", series)
		}
	}

	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	_, err = client.Simulate(ctx, seqpoint.SimulateRequest{
		Model: "gnmt", Batch: 2, SeqLens: []int{5, 9},
	})
	var apiErr *seqpoint.ServiceAPIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("drained server accepted work: %v", err)
	}
	if apiErr.Code != "draining" {
		t.Fatalf("drain rejection code = %q, want draining", apiErr.Code)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !st.Draining || st.Inflight != 0 {
		t.Fatalf("post-drain stats = %+v, want Draining=true Inflight=0", st)
	}
}
