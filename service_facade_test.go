package seqpoint_test

// Facade coverage for the serving subsystem: the public re-exports must
// be enough to run the full service story — build a server over a
// private engine, query it through the typed client, persist the cache
// and restore it warm — without touching internal packages.

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"seqpoint"
)

func TestServiceFacadeRoundTrip(t *testing.T) {
	eng := seqpoint.NewEngine()
	srv := seqpoint.NewServer(seqpoint.ServerOptions{Engine: eng})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := seqpoint.NewServiceClient(ts.URL, nil)
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	req := seqpoint.SimulateRequest{
		Model:   "gnmt",
		Batch:   4,
		SeqLens: []int{4, 7, 9, 12, 4, 9, 15, 21},
	}
	sum, err := client.Simulate(ctx, req)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if sum.Iterations == 0 || sum.TrainUS <= 0 {
		t.Fatalf("degenerate summary: %+v", sum)
	}

	// Snapshot through the facade, restore into a fresh engine, and
	// verify the restarted server answers the same query warm.
	cachePath := filepath.Join(t.TempDir(), "cache.json")
	if err := eng.SaveSnapshot(cachePath); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	restarted := seqpoint.NewEngine()
	n, err := restarted.LoadSnapshot(cachePath)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if n == 0 {
		t.Fatal("snapshot restored no profiles")
	}

	ts2 := httptest.NewServer(seqpoint.NewServer(seqpoint.ServerOptions{Engine: restarted}))
	defer ts2.Close()
	sum2, err := seqpoint.NewServiceClient(ts2.URL, nil).Simulate(ctx, req)
	if err != nil {
		t.Fatalf("warm simulate: %v", err)
	}
	stats := restarted.Stats()
	if stats.Misses != 0 {
		t.Fatalf("restarted engine recomputed %d profiles; want all served from the restored cache", stats.Misses)
	}
	a, err := sum.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sum2.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("warm restart changed the answer:\n%s\nvs\n%s", a, b)
	}

	if seqpoint.CacheSnapshotVersion < 1 {
		t.Fatalf("CacheSnapshotVersion = %d, want >= 1", seqpoint.CacheSnapshotVersion)
	}
}
