package seqpoint_test

// Facade coverage for the online-serving subsystem: the public
// re-exports must be enough to run the full serving story — build a
// trace, pick a policy, simulate, read the tail, and query the HTTP
// endpoint — without touching internal packages.

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"seqpoint"
)

func TestServingFacadeEndToEnd(t *testing.T) {
	corpus, err := seqpoint.Synthetic("facade-serve", []int{4, 7, 9, 12, 15, 21, 9, 7}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := seqpoint.PoissonTrace(corpus, 48, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := seqpoint.ParseBatchPolicy("length", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := seqpoint.NewEngine()
	res, err := seqpoint.SimulateServing(seqpoint.ServingSpec{
		Model:    seqpoint.NewGNMT(),
		Trace:    trace,
		Policy:   policy,
		Profiles: eng,
	}, seqpoint.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if sum.Requests != 48 || sum.Batches == 0 || sum.P99LatencyUS <= 0 {
		t.Fatalf("degenerate serving summary: %+v", sum)
	}
	if sum.P50LatencyUS > sum.P95LatencyUS || sum.P95LatencyUS > sum.P99LatencyUS {
		t.Errorf("percentiles not monotone: %+v", sum)
	}

	// The percentile primitive is public too.
	p, err := seqpoint.Percentile([]float64{1, 2, 3, 4}, 100)
	if err != nil || p != 4 {
		t.Errorf("Percentile = %v, %v; want 4, nil", p, err)
	}
}

func TestServingFacadeHTTP(t *testing.T) {
	srv := seqpoint.NewServer(seqpoint.ServerOptions{Engine: seqpoint.NewEngine()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := seqpoint.NewServiceClient(ts.URL, nil)
	resp, err := client.Serve(context.Background(), seqpoint.ServeRequest{
		Model:    "gnmt",
		Rate:     300,
		Batch:    8,
		Requests: 32,
		SeqLens:  []int{4, 7, 9, 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Summary.Requests != 32 || resp.Summary.ThroughputRPS <= 0 {
		t.Fatalf("degenerate serve response: %+v", resp)
	}

	// A validation failure surfaces the server's message through the
	// typed APIError.
	_, err = client.Serve(context.Background(), seqpoint.ServeRequest{Model: "gnmt", Rate: -1})
	var apiErr *seqpoint.ServiceAPIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("want 400 *ServiceAPIError, got %v", err)
	}
}
