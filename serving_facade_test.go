package seqpoint_test

// Facade coverage for the online-serving subsystem: the public
// re-exports must be enough to run the full serving story — build a
// trace, pick a policy, simulate, read the tail, and query the HTTP
// endpoint — without touching internal packages.

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"seqpoint"
)

func TestServingFacadeEndToEnd(t *testing.T) {
	corpus, err := seqpoint.Synthetic("facade-serve", []int{4, 7, 9, 12, 15, 21, 9, 7}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := seqpoint.PoissonTrace(corpus, 48, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := seqpoint.ParseBatchPolicy("length", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := seqpoint.NewEngine()
	res, err := seqpoint.SimulateServing(seqpoint.ServingSpec{
		Model:    seqpoint.NewGNMT(),
		Trace:    trace,
		Policy:   policy,
		Profiles: eng,
	}, seqpoint.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if sum.Requests != 48 || sum.Batches == 0 || sum.P99LatencyUS <= 0 {
		t.Fatalf("degenerate serving summary: %+v", sum)
	}
	if sum.P50LatencyUS > sum.P95LatencyUS || sum.P95LatencyUS > sum.P99LatencyUS {
		t.Errorf("percentiles not monotone: %+v", sum)
	}

	// The percentile primitive is public too.
	p, err := seqpoint.Percentile([]float64{1, 2, 3, 4}, 100)
	if err != nil || p != 4 {
		t.Errorf("Percentile = %v, %v; want 4, nil", p, err)
	}
}

func TestServingFacadeHTTP(t *testing.T) {
	srv := seqpoint.NewServer(seqpoint.ServerOptions{Engine: seqpoint.NewEngine()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := seqpoint.NewServiceClient(ts.URL, nil)
	resp, err := client.Serve(context.Background(), seqpoint.ServeRequest{WorkloadSpec: seqpoint.WorkloadSpec{
		Model:    "gnmt",
		Rate:     300,
		Batch:    8,
		Requests: 32,
		SeqLens:  []int{4, 7, 9, 12},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Summary.Requests != 32 || resp.Summary.ThroughputRPS <= 0 {
		t.Fatalf("degenerate serve response: %+v", resp)
	}

	// A validation failure surfaces the server's message through the
	// typed APIError.
	_, err = client.Serve(context.Background(), seqpoint.ServeRequest{WorkloadSpec: seqpoint.WorkloadSpec{Model: "gnmt", Rate: -1}})
	var apiErr *seqpoint.ServiceAPIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("want 400 *ServiceAPIError, got %v", err)
	}
}

// TestFleetFacadeEndToEnd runs the full fleet story through the public
// facade: routers, admission, autoscaling, the generalization witness,
// and the HTTP endpoint.
func TestFleetFacadeEndToEnd(t *testing.T) {
	corpus, err := seqpoint.Synthetic("facade-fleet", []int{4, 7, 9, 12, 15, 21, 9, 7}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := seqpoint.PoissonTrace(corpus, 64, 900, 3)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := seqpoint.ParseBatchPolicy("dynamic", 8, 5000)
	if err != nil {
		t.Fatal(err)
	}
	router, err := seqpoint.ParseRouting("jsq", 3)
	if err != nil {
		t.Fatal(err)
	}
	eng := seqpoint.NewEngine()
	res, err := seqpoint.SimulateFleet(seqpoint.FleetSpec{
		Model:    seqpoint.NewGNMT(),
		Trace:    trace,
		Policy:   policy,
		Router:   router,
		Replicas: 2,
		QueueCap: 16,
		Autoscale: &seqpoint.FleetAutoscale{
			Min: 1, Max: 3, UpDepth: 4, DownDepth: 1, CooldownUS: 1000,
		},
		Profiles: eng,
	}, seqpoint.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if sum.Served+sum.Rejected != 64 || sum.ThroughputRPS <= 0 {
		t.Fatalf("degenerate fleet summary: %+v", sum)
	}
	if len(sum.PerReplica) != 3 {
		t.Fatalf("per-replica rows = %d, want 3 (autoscale max)", len(sum.PerReplica))
	}

	// The 1-replica round-robin fleet is the single-queue simulator.
	single, err := seqpoint.SimulateFleet(seqpoint.FleetSpec{
		Model:    seqpoint.NewGNMT(),
		Trace:    trace,
		Policy:   policy,
		Router:   seqpoint.NewRoundRobin(),
		Replicas: 1,
		Profiles: eng,
	}, seqpoint.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	asServing, err := single.AsServing()
	if err != nil {
		t.Fatal(err)
	}
	if asServing.Summary().Requests != 64 {
		t.Errorf("AsServing lost requests: %+v", asServing.Summary())
	}
}

func TestFleetFacadeHTTP(t *testing.T) {
	srv := seqpoint.NewServer(seqpoint.ServerOptions{Engine: seqpoint.NewEngine()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := seqpoint.NewServiceClient(ts.URL, nil)
	resp, err := client.Fleet(context.Background(), seqpoint.FleetRequest{
		WorkloadSpec: seqpoint.WorkloadSpec{
			Model:    "gnmt",
			Rate:     500,
			Batch:    8,
			Requests: 32,
			SeqLens:  []int{4, 7, 9, 12},
		},
		Replicas:  2,
		Routing:   "least",
		Autoscale: &seqpoint.FleetAutoscaleSpec{Max: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Routing != "least" || resp.Summary.Served+resp.Summary.Rejected != 32 {
		t.Fatalf("degenerate fleet response: %+v", resp)
	}

	_, err = client.Fleet(context.Background(), seqpoint.FleetRequest{
		WorkloadSpec: seqpoint.WorkloadSpec{Model: "gnmt", Rate: 100},
		Routing:      "random",
	})
	var apiErr *seqpoint.ServiceAPIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("want 400 *ServiceAPIError, got %v", err)
	}
}
